"""In-process SPMD communicator — the repo's MPI stand-in.

The paper's algorithms run across MPI ranks on Titan.  mpi4py (and a real
MPI) is unavailable in this environment, so this module provides an
in-process communicator with mpi4py-compatible semantics: point-to-point
``send``/``recv`` with tags, and the collectives used by the analysis code
(``barrier``, ``bcast``, ``scatter``, ``gather``, ``allgather``,
``allreduce``, ``alltoall``, ``reduce``).

An SPMD program is a function ``fn(comm, *args)``; :func:`run_spmd`
executes it over a pluggable *transport* (``transport="thread"`` or
``"process"``, see :mod:`repro.parallel.transport`).  The thread
transport runs one OS thread per rank against a shared :class:`World`
and is the deterministic reference; the process transport forks one OS
process per rank over shared-memory queues for real multi-core
parallelism.  Both move logically identical payloads, so rank programs
produce bit-for-bit the same results on either.

Messages are deep-ish copies (NumPy arrays are copied; process hops
copy by construction) so that ranks cannot accidentally share mutable
state through the transport, mirroring distributed-memory semantics.

:class:`Communicator` talks to its world through a narrow interface —
``deliver`` / ``poll`` / ``barrier_wait`` / ``aborted`` — which is what
makes the transports swappable.
"""

from __future__ import annotations

import hashlib
import queue
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

if TYPE_CHECKING:
    from .transport import SpmdConfig

__all__ = [
    "CollectiveProtocolError",
    "Communicator",
    "SpmdError",
    "World",
    "run_spmd",
]

ANY_SOURCE = -1
ANY_TAG = -1

#: Default seconds a blocking recv/collective waits before declaring deadlock.
DEFAULT_TIMEOUT = 120.0


class SpmdError(RuntimeError):
    """Raised when an SPMD program deadlocks or a rank raises."""


class CollectiveProtocolError(SpmdError):
    """The collective-sequence sanitizer found ranks out of protocol.

    Raised on *every* rank when, at a barrier, the hashed ordered
    collective-op/dtype/shape sequences disagree across ranks; the
    message names the diverging rank(s).  Only armed under
    ``REPRO_SANITIZE=1`` (the runtime twin of static rule RPR011).
    """


def _isolate(obj: Any) -> Any:
    """Copy mutable payloads so ranks do not share memory through messages."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_isolate(x) for x in obj)
    if isinstance(obj, list):
        return [_isolate(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _isolate(v) for k, v in obj.items()}
    return obj


@dataclass
class _Mailbox:
    """Per-rank incoming message store with (source, tag) matching."""

    inbox: "queue.Queue[tuple[int, int, Any]]" = field(default_factory=queue.Queue)
    pending: list[tuple[int, int, Any]] = field(default_factory=list)

    def match(self, source: int, tag: int, timeout: float) -> tuple[int, int, Any]:
        for i, (src, tg, _payload) in enumerate(self.pending):
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg)):
                return self.pending.pop(i)
        while True:
            try:
                msg = self.inbox.get(timeout=timeout)
            except queue.Empty:
                raise SpmdError(
                    f"recv(source={source}, tag={tag}) timed out after {timeout}s "
                    "— likely SPMD deadlock"
                ) from None
            src, tg, _ = msg
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg)):
                return msg
            self.pending.append(msg)


class World:
    """Shared state backing one thread-transport SPMD execution.

    Holds the per-rank mailboxes and the barrier, accumulates transport
    statistics (message counts and payload bytes) that the machine cost
    model uses to charge communication time, and implements the narrow
    transport interface (``deliver`` / ``poll`` / ``barrier_wait`` /
    ``aborted``) the :class:`Communicator` is written against.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.timeout = timeout
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier_obj = threading.Barrier(size)
        self.abort = threading.Event()
        self.failure: tuple[int, BaseException] | None = None
        self._stats_lock = threading.Lock()
        self.messages_sent = 0
        self.bytes_sent = 0

    def record(self, payload: Any) -> None:
        nbytes = _payload_bytes(payload)
        with self._stats_lock:
            self.messages_sent += 1
            self.bytes_sent += nbytes

    # -- narrow transport interface (shared with _ProcessRankWorld) -----

    def aborted(self) -> str | None:
        """Abort reason if the world is dead, else ``None``."""
        if not self.abort.is_set():
            return None
        if self.failure is not None:
            rank, exc = self.failure
            return f"world aborted (rank {rank} raised {type(exc).__name__})"
        return "world aborted"

    def fail(self, rank: int, exc: BaseException) -> None:
        """Mark the world dead because ``rank`` raised ``exc``."""
        with self._stats_lock:
            if self.failure is None:
                self.failure = (rank, exc)
        self.abort.set()
        self.barrier_obj.abort()

    def deliver(self, dest: int, source: int, tag: int, obj: Any) -> None:
        """Isolate ``obj`` and enqueue it on ``dest``'s mailbox."""
        payload = _isolate(obj)
        self.record(payload)
        self.mailboxes[dest].inbox.put((source, tag, payload))

    def poll(self, rank: int, source: int, tag: int, step: float) -> Any:
        """One bounded matching attempt on ``rank``'s mailbox."""
        _, _, payload = self.mailboxes[rank].match(source, tag, step)
        return payload

    def barrier_wait(self) -> None:
        """Enter the world barrier; name the culprit if it breaks."""
        try:
            self.barrier_obj.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            failure = self.failure
            if failure is not None:
                rank, exc = failure
                raise SpmdError(
                    f"barrier broken: rank {rank} raised "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            raise SpmdError(
                f"barrier broken (a rank died or timed out after {self.timeout}s)"
            ) from None


def _shape_sig(obj: Any, depth: int = 0) -> str:
    """Rank-invariant type/dtype/shape signature of a collective payload.

    Only structure is hashed, never values, so per-rank *data* may differ
    (scatter parts, reduce contributions) while protocol divergence —
    a different op order, dtype, or shape — still changes the digest.
    """
    if isinstance(obj, np.ndarray):
        return f"nd[{obj.dtype.str},{obj.shape}]"
    if isinstance(obj, (list, tuple)):
        if depth >= 2 or not obj:
            return f"seq[{len(obj)}]"
        return f"seq[{len(obj)},{_shape_sig(obj[0], depth + 1)}]"
    if isinstance(obj, dict):
        return f"map[{len(obj)}]"
    return type(obj).__name__


class _ProtocolRecorder:
    """Running hash of one rank's ordered collective-op signatures."""

    __slots__ = ("_hash", "count", "recent")

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.count = 0
        self.recent: deque[str] = deque(maxlen=6)

    def record(self, *sig: object) -> None:
        text = "|".join(str(part) for part in sig)
        self._hash.update(text.encode())
        self._hash.update(b"\n")
        self.count += 1
        self.recent.append(text)

    def digest(self) -> str:
        return self._hash.hexdigest()


def _protocol_verdict(
    reports: dict[int, tuple[str, int, tuple[str, ...]]],
) -> str:
    """Compare per-rank (digest, count, recent-ops); "" when consistent.

    The majority (ties broken toward the group containing the lowest
    rank) defines the reference protocol; everyone else is named as
    diverging, with op counts and last-op tails for diagnosis.
    """
    groups: dict[tuple[str, int], list[int]] = {}
    for rank, (digest, count, _recent) in reports.items():
        groups.setdefault((digest, count), []).append(rank)
    if len(groups) <= 1:
        return ""
    modal_key = max(groups, key=lambda k: (len(groups[k]), -min(groups[k])))
    modal_ranks = sorted(groups[modal_key])
    divergers = sorted(r for r in reports if r not in groups[modal_key])
    parts = []
    for rank in divergers:
        digest, count, recent = reports[rank]
        tail = " <- ".join(reversed(recent)) or "(none)"
        parts.append(f"rank {rank}: {count} op(s), last: {tail}")
    _, modal_count, modal_recent = reports[modal_ranks[0]]
    modal_tail = " <- ".join(reversed(modal_recent)) or "(none)"
    return (
        "collective protocol divergence at barrier: "
        f"rank(s) {', '.join(map(str, divergers))} diverge from the majority "
        f"(ranks {', '.join(map(str, modal_ranks))}: {modal_count} op(s), "
        f"last: {modal_tail}); {'; '.join(parts)}"
    )


def _payload_bytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(v) for v in obj.values())
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    return 8  # nominal scalar size


class Communicator:
    """Rank-local handle to a world (mpi4py-flavoured API).

    ``world`` is any transport implementing the narrow interface:
    the thread :class:`World` here, or the process-backed rank world in
    :mod:`repro.parallel.transport`.
    """

    def __init__(self, world: Any, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        # Collective-sequence sanitizer (RPR011's runtime twin): armed only
        # under REPRO_SANITIZE=1, so the hot path costs one env lookup at
        # construction.  Forked process ranks inherit the environment, so
        # the same switch arms both transports.
        from ..check.sanitize import sanitize_enabled

        self._protocol: _ProtocolRecorder | None = (
            _ProtocolRecorder() if sanitize_enabled() else None
        )

    # -- point to point -------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest`` (non-blocking buffered send)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        reason = self.world.aborted()
        if reason is not None:
            raise SpmdError(reason)
        self.world.deliver(dest, self.rank, tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Receive a message matching ``(source, tag)``; blocks until available."""
        deadline_step = min(0.25, self.world.timeout)
        waited = 0.0
        while True:
            reason = self.world.aborted()
            if reason is not None:
                raise SpmdError(reason)
            try:
                return self.world.poll(self.rank, source, tag, deadline_step)
            except SpmdError:
                waited += deadline_step
                if waited >= self.world.timeout:
                    raise

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Combined send+recv (safe against pairwise exchange deadlock)."""
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- collectives ----------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank has entered the barrier.

        If the barrier breaks, the raised :class:`SpmdError` names the
        rank that died or timed out and (thread transport) chains the
        originating exception.  With ``REPRO_SANITIZE=1`` the barrier is
        also the protocol checkpoint: ranks cross-check their hashed
        collective sequences here and fail fast, naming the diverging
        rank, instead of deadlocking later.
        """
        if self._protocol is not None:
            self._protocol.record("barrier")
            self._check_protocol()
        self.world.barrier_wait()

    def _check_protocol(self) -> None:
        """Cross-check per-rank collective-sequence digests (rank 0 judges)."""
        proto = self._protocol
        if proto is None or self.size == 1:
            return
        tag = _SysTag.SANITIZE
        if self.rank != 0:
            self.send((self.rank, proto.digest(), proto.count, tuple(proto.recent)), 0, tag)
            verdict = self.recv(0, tag)
            if verdict:
                raise CollectiveProtocolError(verdict)
            return
        reports: dict[int, tuple[str, int, tuple[str, ...]]] = {
            0: (proto.digest(), proto.count, tuple(proto.recent))
        }
        for _ in range(self.size - 1):
            rank, digest, count, recent = self.recv(ANY_SOURCE, tag)
            reports[rank] = (digest, count, tuple(recent))
        verdict = _protocol_verdict(reports)
        for dst in range(1, self.size):
            self.send(verdict, dst, tag)
        if verdict:
            raise CollectiveProtocolError(verdict)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to all ranks."""
        tag = _SysTag.BCAST
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst, tag)
            out = _isolate(obj)
        else:
            out = self.recv(root, tag)
        if self._protocol is not None:
            # the broadcast value is identical on every rank, so its
            # structural signature is rank-invariant by construction
            self._protocol.record("bcast", root, _shape_sig(out))
        return out

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one element of ``objs`` to each rank."""
        tag = _SysTag.SCATTER
        if self._protocol is not None:
            self._protocol.record("scatter", root)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter requires len(objs) == comm.size at root")
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst, tag)
            return _isolate(objs[root])
        return self.recv(root, tag)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank at ``root`` (rank order)."""
        tag = _SysTag.GATHER
        if self._protocol is not None:
            self._protocol.record("gather", root)
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = _isolate(obj)
            for _ in range(self.size - 1):
                # tag match is on (src, tag); order recovery via src
                src_obj = self._recv_with_source(tag)
                out[src_obj[0]] = src_obj[1]
            return out
        self.send((self.rank, _isolate(obj)), root, tag)
        return None

    def _recv_with_source(self, tag: int) -> tuple[int, Any]:
        payload = self.recv(ANY_SOURCE, tag)
        return payload  # payload is (src_rank, obj)

    def allgather(self, obj: Any) -> list[Any]:
        """Gather at rank 0 then broadcast the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] = np.add, root: int = 0) -> Any:
        """Reduce across ranks with binary ``op``; result valid at ``root``."""
        gathered = self.gather(obj, root=root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for x in gathered[1:]:
            acc = op(acc, x)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = np.add) -> Any:
        """Reduce across ranks and broadcast the result."""
        reduced = self.reduce(obj, op=op, root=0)
        return self.bcast(reduced, root=0)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: ``objs[d]`` goes to rank ``d``.

        Returns the list of objects received, indexed by source rank.
        """
        if len(objs) != self.size:
            raise ValueError("alltoall requires len(objs) == comm.size")
        tag = _SysTag.ALLTOALL
        if self._protocol is not None:
            self._protocol.record("alltoall", self.size)
        for dst in range(self.size):
            if dst != self.rank:
                self.send((self.rank, objs[dst]), dst, tag)
        out: list[Any] = [None] * self.size
        out[self.rank] = _isolate(objs[self.rank])
        for _ in range(self.size - 1):
            src, obj = self.recv(ANY_SOURCE, tag)
            out[src] = obj
        return out


class _SysTag:
    """Reserved tags for collectives (kept clear of user tags >= 0)."""

    BCAST = -101
    SCATTER = -102
    GATHER = -103
    ALLTOALL = -104
    SANITIZE = -105  # collective-sequence sanitizer cross-check


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    return_world: bool = False,
    transport: "str | SpmdConfig | None" = None,
    **kwargs: Any,
) -> list[Any] | tuple[list[Any], Any]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nranks`` concurrent ranks.

    Returns the list of per-rank return values (rank order).  If any rank
    raises, the world is aborted and the first exception is re-raised
    wrapped in :class:`SpmdError`.  With ``return_world=True`` the world
    (carrying transport statistics) is also returned.

    ``transport`` selects the rank substrate: ``"thread"`` (default; the
    deterministic in-process reference), ``"process"`` (one forked OS
    process per rank — real parallelism), or a full
    :class:`~repro.parallel.transport.SpmdConfig`.  ``None`` consults the
    ``REPRO_SPMD_TRANSPORT`` environment variable.  ``nranks == 1``
    always runs inline on the calling thread regardless of transport
    (useful under profilers; also what the cost model assumes).
    """
    from .transport import resolve_transport, run_process_spmd

    cfg = resolve_transport(transport)
    if nranks > 1 and cfg.transport == "process":
        return run_process_spmd(
            cfg, nranks, fn, args, kwargs, timeout=timeout, return_world=return_world
        )
    if cfg.timeout is not None:
        timeout = cfg.timeout

    world = World(nranks, timeout=timeout)
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # repro: noqa[RPR006] - collected and
            # re-raised by spmd() as SpmdError after the world aborts
            with lock:
                errors.append((rank, exc))
            world.fail(rank, exc)

    if nranks == 1:
        # Fast path: no threads, direct call (useful under profilers).
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout * 4)
            if t.is_alive():
                world.abort.set()
                world.barrier_obj.abort()
                raise SpmdError(f"rank thread {t.name} failed to terminate")

    if errors:
        rank, exc = errors[0]
        raise SpmdError(f"rank {rank} raised {type(exc).__name__}: {exc}") from exc
    if return_world:
        return results, world
    return results
