"""Overload (ghost) region construction for the parallel halo finder.

The paper (§3.3.1): "Overload regions are defined at the boundaries of
the processors, with each of the neighboring processors receiving a copy
of the particles in this region.  The size of the overload regions are
defined to be large enough relative to the maximum feasible halo extent
such that each halo is assured of being found in its entirety by at
least one processor."

Given a rank's owned particle positions, :func:`overload_destinations`
determines, for each neighbor rank, which particles must be replicated
there, including the periodic image shift to apply so the copy lands in
the neighbor's coordinate neighborhood.
"""

from __future__ import annotations

import numpy as np

from .decomposition import CartesianDecomposition

__all__ = ["overload_destinations", "select_overload", "OVERLOAD_SAFETY_FACTOR"]

#: Overload width is usually set to a small multiple of the expected
#: maximum halo diameter; HACC uses a fixed physical width chosen offline.
OVERLOAD_SAFETY_FACTOR = 1.2


def overload_destinations(
    decomp: CartesianDecomposition,
    rank: int,
    positions: np.ndarray,
    width: float,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Plan ghost replication of this rank's particles to its neighbors.

    Parameters
    ----------
    decomp:
        The domain decomposition.
    rank:
        The owning rank whose particles are being replicated outward.
    positions:
        ``(n, 3)`` positions of the rank's *owned* particles (already
        inside the rank's sub-box, in box coordinates).
    width:
        Overload width: particles within ``width`` of a face are
        replicated across that face.

    Returns
    -------
    dict mapping neighbor rank -> ``(indices, shift)`` where ``indices``
    selects the particles to copy and ``shift`` is the ``(k, 3)`` periodic
    offset (multiples of the box length, usually zeros) to add to their
    positions so the neighbor sees them in its own unwrapped frame.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    if width < 0:
        raise ValueError("overload width must be non-negative")
    cell = decomp.cell_sizes
    if np.any(width >= cell / 2) and decomp.nranks > 1:
        # A width of half the cell or more would replicate particles to
        # non-adjacent ranks, which this 26-neighbor scheme cannot express.
        raise ValueError(
            f"overload width {width} too large for cell sizes {cell} "
            "(must be < half the sub-box edge)"
        )

    ix, iy, iz = decomp.coords_of_rank(rank)
    lo, hi = decomp.bounds(rank)
    dims = np.asarray(decomp.dims)
    box = decomp.box

    # For each axis, flag particles near the low / high face.
    near_lo = positions < (lo + width)  # (n, 3) booleans
    near_hi = positions >= (hi - width)

    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if dx == dy == dz == 0:
                    continue
                d = (dx, dy, dz)
                mask = np.ones(len(positions), dtype=bool)
                for axis, step in enumerate(d):
                    if step == -1:
                        mask &= near_lo[:, axis]
                    elif step == 1:
                        mask &= near_hi[:, axis]
                if not mask.any():
                    continue
                nbr = decomp.rank_of_coords(ix + dx, iy + dy, iz + dz)
                idx = np.flatnonzero(mask)
                # Periodic shift: if stepping off the grid edge, shift the
                # copy so it lands adjacent to the receiving rank's frame.
                # Stepping below cell 0 wraps to the highest rank, whose
                # high face sits at x=box: the copy must appear at x+box.
                shift = np.zeros(3)
                coords = np.asarray([ix, iy, iz])
                for axis, step in enumerate(d):
                    tgt = coords[axis] + step
                    if tgt < 0:
                        shift[axis] = box
                    elif tgt >= dims[axis]:
                        shift[axis] = -box
                shifts = np.broadcast_to(shift, (idx.size, 3)).copy()
                if nbr in out:
                    prev_idx, prev_shift = out[nbr]
                    # Same neighbor reachable via several corner directions
                    # (small grids with wraparound): merge, dedup on index
                    # + shift so distinct periodic images are all kept.
                    merged_idx = np.concatenate([prev_idx, idx])
                    merged_shift = np.concatenate([prev_shift, shifts])
                    key = np.column_stack([merged_idx.astype(float), merged_shift])
                    _, unique_pos = np.unique(key, axis=0, return_index=True)
                    unique_pos.sort()
                    out[nbr] = (merged_idx[unique_pos], merged_shift[unique_pos])
                else:
                    out[nbr] = (idx, shifts)
    return out


def select_overload(
    positions: np.ndarray,
    plan: dict[int, tuple[np.ndarray, np.ndarray]],
    neighbor: int,
) -> np.ndarray:
    """Materialize the shifted ghost positions destined for ``neighbor``."""
    idx, shift = plan[neighbor]
    return np.asarray(positions, dtype=float)[idx] + shift
