"""Linear matter power spectrum (Eisenstein & Hu 1998, no-wiggle form).

Seeds the Gaussian initial conditions of the mini-HACC simulation and
provides the theory curve the in-situ power-spectrum analysis is compared
against.  The no-wiggle transfer function captures the broadband shape
(which controls the halo mass function) without the baryon acoustic
oscillations, which are irrelevant at the box sizes this reproduction
runs.

Wavenumbers are in ``h/Mpc``; power is in ``(Mpc/h)^3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import integrate

from .cosmology import Cosmology

__all__ = ["LinearPower", "transfer_eisenstein_hu"]


def transfer_eisenstein_hu(k: np.ndarray, cosmo: Cosmology) -> np.ndarray:
    """Eisenstein & Hu (1998) zero-baryon ("no-wiggle") transfer function.

    Parameters
    ----------
    k:
        Wavenumbers in ``h/Mpc``.
    cosmo:
        Background cosmology supplying ``omega_m``, ``omega_b``, ``h``.
    """
    k = np.asarray(k, dtype=float)
    h = cosmo.h
    om = cosmo.omega_m * h * h  # omega_m h^2
    ob = cosmo.omega_b * h * h
    theta = 2.728 / 2.7  # CMB temperature in units of 2.7 K

    # sound horizon (EH98 eq. 26)
    s = 44.5 * np.log(9.83 / om) / np.sqrt(1.0 + 10.0 * ob**0.75)
    # alpha_gamma (eq. 31)
    f_b = ob / om
    alpha = 1.0 - 0.328 * np.log(431.0 * om) * f_b + 0.38 * np.log(22.3 * om) * f_b**2

    k_mpc = k * h  # 1/Mpc
    gamma_eff = cosmo.omega_m * h * (alpha + (1.0 - alpha) / (1.0 + (0.43 * k_mpc * s) ** 4))
    q = k * theta**2 / gamma_eff
    l0 = np.log(2.0 * np.e + 1.8 * q)
    c0 = 14.2 + 731.0 / (1.0 + 62.5 * q)
    return l0 / (l0 + c0 * q * q)


def _tophat_window(x: np.ndarray) -> np.ndarray:
    """Fourier transform of a real-space spherical top-hat."""
    x = np.asarray(x, dtype=float)
    out = np.ones_like(x)
    nz = np.abs(x) > 1e-6
    xn = x[nz]
    out[nz] = 3.0 * (np.sin(xn) - xn * np.cos(xn)) / xn**3
    return out


@dataclass
class LinearPower:
    """σ8-normalized linear matter power spectrum at z = 0.

    ``P(k) = A k^{n_s} T(k)^2`` with ``A`` fixed so that the RMS
    fluctuation in 8 Mpc/h top-hat spheres equals ``cosmo.sigma8``.
    Scale to other redshifts by multiplying with ``D(a)^2``.
    """

    cosmo: Cosmology
    _norm: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self._norm = 1.0
        target = self.cosmo.sigma8
        sig = self.sigma_r(8.0)
        self._norm = (target / sig) ** 2

    def unnormalized(self, k: np.ndarray) -> np.ndarray:
        """``k^{n_s} T^2(k)`` without the σ8 normalization."""
        k = np.asarray(k, dtype=float)
        t = transfer_eisenstein_hu(k, self.cosmo)
        return np.where(k > 0, k**self.cosmo.n_s * t * t, 0.0)

    def __call__(self, k: np.ndarray) -> np.ndarray:
        """Linear P(k) at z = 0 in ``(Mpc/h)^3``."""
        return self._norm * self.unnormalized(k)

    def at_redshift(self, k: np.ndarray, z: float) -> np.ndarray:
        """Linear P(k) scaled to redshift ``z`` via the growth factor."""
        d = self.cosmo.growth_factor(1.0 / (1.0 + z))
        return self(k) * d * d

    def sigma_r(self, r: float) -> float:
        """RMS linear fluctuation in top-hat spheres of radius ``r`` Mpc/h."""

        def integrand(lnk: float) -> float:
            k = np.exp(lnk)
            w = _tophat_window(np.asarray(k * r))
            return float(self._norm * self.unnormalized(np.asarray(k)) * w * w * k**3)

        val, _ = integrate.quad(integrand, np.log(1e-5), np.log(1e3), limit=400)
        return float(np.sqrt(val / (2.0 * np.pi**2)))
