"""Particle container and Level 1 data accounting.

HACC's raw (Level 1) output stores, per particle, positions, velocities,
and a particle tag, at **36 bytes per particle** (paper §3).  This module
defines the structure-of-arrays container used throughout the repo and
the byte accounting the data-level size model (Table 1) relies on:

========  =========  =====
field     dtype      bytes
========  =========  =====
x, y, z   float32    12
vx,vy,vz  float32    12
tag       uint64      8
mask      uint32      4
========  =========  =====

Total: 36 bytes, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Particles", "BYTES_PER_PARTICLE", "LEVEL1_SCHEMA"]

#: Raw bytes of Level 1 data per particle (paper §3: "each particle
#: carries 36 bytes of information").
BYTES_PER_PARTICLE = 36

#: Field name -> numpy dtype of one Level 1 particle record.
LEVEL1_SCHEMA: dict[str, np.dtype] = {
    "x": np.dtype(np.float32),
    "y": np.dtype(np.float32),
    "z": np.dtype(np.float32),
    "vx": np.dtype(np.float32),
    "vy": np.dtype(np.float32),
    "vz": np.dtype(np.float32),
    "tag": np.dtype(np.uint64),
    "mask": np.dtype(np.uint32),
}


@dataclass
class Particles:
    """Structure-of-arrays particle set.

    Positions are comoving, in box units (``[0, box)``); velocities are in
    matching code units; ``tag`` is a globally unique particle identifier;
    ``mask`` carries per-particle status bits (unused bits reserved).
    All particles have equal mass ``particle_mass`` (N-body convention),
    so halo mass is simply count x particle_mass.
    """

    pos: np.ndarray  # (n, 3) float32/float64
    vel: np.ndarray  # (n, 3)
    tag: np.ndarray  # (n,) uint64
    mask: np.ndarray | None = None  # (n,) uint32
    box: float = 1.0
    particle_mass: float = 1.0
    extra: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.pos = np.atleast_2d(np.asarray(self.pos))
        self.vel = np.atleast_2d(np.asarray(self.vel))
        self.tag = np.asarray(self.tag, dtype=np.uint64)
        n = len(self.pos)
        if self.pos.shape != (n, 3) or self.vel.shape != (n, 3):
            raise ValueError("pos and vel must have shape (n, 3)")
        if len(self.tag) != n:
            raise ValueError("tag length must match particle count")
        if self.mask is None:
            self.mask = np.zeros(n, dtype=np.uint32)
        else:
            self.mask = np.asarray(self.mask, dtype=np.uint32)
            if len(self.mask) != n:
                raise ValueError("mask length must match particle count")

    def __len__(self) -> int:
        return len(self.pos)

    @property
    def n(self) -> int:
        """Particle count."""
        return len(self.pos)

    @property
    def level1_bytes(self) -> int:
        """Raw Level 1 size of this particle set (36 B/particle)."""
        return self.n * BYTES_PER_PARTICLE

    # -- manipulation ------------------------------------------------------

    def select(self, index: np.ndarray) -> "Particles":
        """New :class:`Particles` holding the rows selected by ``index``."""
        return Particles(
            pos=self.pos[index],
            vel=self.vel[index],
            tag=self.tag[index],
            mask=self.mask[index],
            box=self.box,
            particle_mass=self.particle_mass,
            extra={k: v[index] for k, v in self.extra.items()},
        )

    def copy(self) -> "Particles":
        """Deep copy."""
        return Particles(
            pos=self.pos.copy(),
            vel=self.vel.copy(),
            tag=self.tag.copy(),
            mask=self.mask.copy(),
            box=self.box,
            particle_mass=self.particle_mass,
            extra={k: v.copy() for k, v in self.extra.items()},
        )

    def copy_into(self, dst: "Particles") -> "Particles":
        """Copy this state into ``dst``'s existing buffers (no allocation).

        ``dst`` must hold the same particle count, field shapes, and
        extra-field set (the double-buffer reuse path of the pipelined
        in-situ manager).  Returns ``dst``.
        """
        if len(dst) != len(self) or set(dst.extra) != set(self.extra):
            raise ValueError("destination buffers do not match this particle set")
        np.copyto(dst.pos, self.pos)
        np.copyto(dst.vel, self.vel)
        np.copyto(dst.tag, self.tag)
        np.copyto(dst.mask, self.mask)
        for key, value in self.extra.items():
            np.copyto(dst.extra[key], value)
        dst.box = self.box
        dst.particle_mass = self.particle_mass
        return dst

    @staticmethod
    def concatenate(parts: list["Particles"]) -> "Particles":
        """Concatenate particle sets (metadata taken from the first)."""
        if not parts:
            raise ValueError("cannot concatenate empty list")
        first = parts[0]
        keys = set(first.extra)
        for p in parts[1:]:
            if set(p.extra) != keys:
                raise ValueError("extra-field sets differ between parts")
        return Particles(
            pos=np.concatenate([p.pos for p in parts]),
            vel=np.concatenate([p.vel for p in parts]),
            tag=np.concatenate([p.tag for p in parts]),
            mask=np.concatenate([p.mask for p in parts]),
            box=first.box,
            particle_mass=first.particle_mass,
            extra={k: np.concatenate([p.extra[k] for p in parts]) for k in keys},
        )

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat dict-of-arrays view (for redistribution / I/O)."""
        out = {"pos": self.pos, "vel": self.vel, "tag": self.tag, "mask": self.mask}
        out.update(self.extra)
        return out

    @classmethod
    def from_arrays(
        cls, arrays: dict[str, np.ndarray], box: float, particle_mass: float = 1.0
    ) -> "Particles":
        """Inverse of :meth:`to_arrays`."""
        extra = {
            k: v for k, v in arrays.items() if k not in ("pos", "vel", "tag", "mask")
        }
        return cls(
            pos=arrays["pos"],
            vel=arrays["vel"],
            tag=arrays["tag"],
            mask=arrays.get("mask"),
            box=box,
            particle_mass=particle_mass,
            extra=extra,
        )

    def wrap(self) -> None:
        """Periodically wrap positions into ``[0, box)`` in place."""
        np.mod(self.pos, self.box, out=self.pos)
