"""Zel'dovich-approximation initial conditions for the mini-HACC run.

Generates a σ8-normalized Gaussian random density field on the particle
grid, converts it to a displacement field (first-order Lagrangian
perturbation theory, the Zel'dovich approximation), and displaces a
uniform particle lattice.  Velocities (code momenta) follow from the
linear growth rate, consistent with the PM integrator's equations of
motion in :mod:`repro.sim.hacc`.

Seed-flow contract (enforced by ``repro.check`` rule RPR001)
-----------------------------------------------------------
The only random draw in the IC pipeline is the white-noise field in
:func:`gaussian_field`, and its ``seed`` is threaded explicitly from
:class:`ICConfig.seed` through :func:`make_initial_conditions` — never
from hidden global RNG state.  Identical ``ICConfig`` values therefore
produce bit-identical particle loads, which is what lets every
downstream analysis (FOF -> centers -> SO -> subhalos, serial or
work-stealing parallel) be regression-compared at the bit level.
Phase-preserving refinement is part of the same contract: the
white-noise convolution keeps mode phases fixed when the power spectrum
changes, so seeds stay comparable across cosmology tweaks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cosmology import Cosmology, a_of_z
from .particles import Particles
from .power import LinearPower

__all__ = ["ICConfig", "gaussian_field", "za_displacements", "make_initial_conditions"]


@dataclass(frozen=True)
class ICConfig:
    """Initial-condition parameters.

    ``np_per_dim`` particles per dimension on a lattice in a periodic box
    of ``box`` Mpc/h, displaced according to the linear power spectrum at
    redshift ``z_initial``.
    """

    np_per_dim: int
    box: float
    z_initial: float = 50.0
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.np_per_dim < 2:
            raise ValueError("np_per_dim must be >= 2")
        if self.box <= 0:
            raise ValueError("box must be positive")
        if self.z_initial <= 0:
            raise ValueError("z_initial must be positive")


def gaussian_field(
    ng: int, box: float, power: LinearPower, seed: int, amplitude: float = 1.0
) -> np.ndarray:
    """Gaussian random overdensity field with spectrum ``amplitude² P(k)``.

    Uses the white-noise-convolution recipe: draw unit white noise on the
    mesh, FFT, and scale each mode by ``sqrt(N P(k) / V)`` so that the
    ensemble power of the discrete field matches the continuum ``P(k)``.
    This construction is exactly Hermitian (real output) and has the
    useful property that refining ``P(k)`` preserves the phases.
    """
    rng = np.random.default_rng(seed)
    white = rng.standard_normal((ng, ng, ng))
    wk = np.fft.rfftn(white)

    kf = 2.0 * np.pi / box  # fundamental mode, h/Mpc
    kx = kf * np.fft.fftfreq(ng, d=1.0 / ng)
    kz = kf * np.fft.rfftfreq(ng, d=1.0 / ng)
    kmag = np.sqrt(
        kx[:, None, None] ** 2 + kx[None, :, None] ** 2 + kz[None, None, :] ** 2
    )

    n_total = ng**3
    volume = box**3
    pk = power(kmag.ravel()).reshape(kmag.shape)
    scale = amplitude * np.sqrt(n_total * pk / volume)
    scale.flat[0] = 0.0  # zero mean
    dk = wk * scale
    return np.fft.irfftn(dk, s=(ng, ng, ng), axes=(0, 1, 2))


def za_displacements(delta: np.ndarray, box: float) -> np.ndarray:
    """Zel'dovich displacement field ψ from an overdensity field.

    Solves ``δ = -∇·ψ`` spectrally: ``ψ_k = i k δ_k / k²``.  Returns an
    array of shape ``(3, ng, ng, ng)`` in the same length units as ``box``.

    Runs on the shared :class:`~repro.sim.pmsolver.PMSolver` — the same
    fused ``i k / k²`` spectral engine as the force evaluation, with its
    cached k-grids and threaded transforms.  Physical wavenumbers are
    the grid wavenumbers over the cell size, so
    ``ψ = cell · IFFT(i k_g δ_k / k_g²)``.
    """
    from .pmsolver import get_solver

    ng = delta.shape[0]
    cell = box / ng
    return cell * get_solver(ng).inverse_gradient(delta)


def make_initial_conditions(
    config: ICConfig, cosmo: Cosmology, power: LinearPower | None = None
) -> Particles:
    """Build the displaced-lattice particle set at ``z_initial``.

    Returned positions are in box units (Mpc/h); velocities hold the PM
    code momenta ``p = a² E(a) f D ψ`` in box-length units (independent of
    the force-mesh resolution — see :class:`repro.sim.hacc.HACCSimulation`
    for the matching equations of motion).  Particle mass is set so total
    mass equals ``np³`` lattice masses of 1 (analysis only needs relative
    masses).
    """
    if power is None:
        power = LinearPower(cosmo)
    n = config.np_per_dim
    box = config.box
    a_init = float(a_of_z(config.z_initial))
    growth = float(cosmo.growth_factor(a_init))

    delta = gaussian_field(n, box, power, config.seed, amplitude=growth)
    psi = za_displacements(delta, box)  # already scaled: delta carries D(a)

    cell = box / n
    lattice = (np.arange(n) + 0.5) * cell
    qx, qy, qz = np.meshgrid(lattice, lattice, lattice, indexing="ij")

    pos = np.empty((n**3, 3))
    pos[:, 0] = (qx + psi[0]).ravel()
    pos[:, 1] = (qy + psi[1]).ravel()
    pos[:, 2] = (qz + psi[2]).ravel()
    np.mod(pos, box, out=pos)

    # Code momenta in box-length units: p = a^2 E(a) f(a) * psi.
    f_growth = float(cosmo.growth_rate(a_init))
    e_a = float(cosmo.efunc(a_init))
    mom_factor = a_init**2 * e_a * f_growth
    vel = np.empty_like(pos)
    for axis in range(3):
        vel[:, axis] = mom_factor * psi[axis].ravel()

    tags = np.arange(n**3, dtype=np.uint64)
    return Particles(pos=pos, vel=vel, tag=tags, box=box, particle_mass=1.0)
