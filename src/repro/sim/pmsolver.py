"""Fused spectral particle-mesh force engine (the PM hot path).

The function-at-a-time pipeline in :mod:`repro.sim.pm` pays 6 full-mesh
FFTs per force evaluation — ``solve_poisson`` does rfftn+irfftn to
materialize φ in real space, then ``gradient_spectral`` re-FFTs φ and
runs 3 inverse transforms — plus an 8×``np.add.at`` CIC deposit, the
slowest possible scatter in numpy.  :class:`PMSolver` fuses the whole
evaluation:

* **4 FFTs, never materializing φ** — Poisson (``-1/k²``) and gradient
  (``i·k``) are applied together in k-space to the single forward
  transform of δ, so the acceleration mesh for each axis comes straight
  out of one inverse transform:  ``a_k = i k · factor · δ_k / k²``.
* **bincount deposit** — the CIC scatter accumulates the 8 corner
  contributions through flattened-index ``np.bincount``, which is both
  deterministic (fixed summation order) and far faster than
  ``np.add.at``.
* **one CIC geometry per evaluation** — corner indices and weights are
  computed once and shared by the scatter (deposit) *and* the gather
  (force interpolation), through preallocated scratch buffers that are
  reused across steps.
* **threaded transforms** — ``scipy.fft`` with ``workers=`` when scipy
  is available (it is a hard dependency of the repo, but the numpy
  fallback keeps the module importable without it).  pocketfft's
  threading parallelizes over independent 1-D transform lines, so
  results are bit-identical for any worker count.

The old free functions (``cic_deposit`` / ``solve_poisson`` /
``gradient_spectral`` / ``cic_interpolate``) are kept in
:mod:`repro.sim.pm` as cross-validation references, the same precedent
as ``potential_reference`` for the center-finder kernels.

Purity contract: no wall-clock reads in this module (rule RPR003 covers
it); timing goes through :func:`repro.obs.timed`, whose clock lives in
``repro.obs`` where it belongs.
"""

from __future__ import annotations

import os

import numpy as np

from ..check.sanitize import guard_kernel
from ..obs import get_recorder, timed

try:  # scipy.fft supports multi-threaded transforms via workers=
    from scipy import fft as _sp_fft
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _sp_fft = None  # type: ignore[assignment]

__all__ = ["PMSolver", "get_solver", "clear_solver_cache", "resolve_fft_workers"]

#: Cap on auto-detected FFT threads: beyond this the per-transform lines
#: are too short for threading to pay at mini-HACC mesh sizes.
_MAX_AUTO_WORKERS = 8


def resolve_fft_workers(workers: int | None = None) -> int:
    """Resolve the FFT thread count.

    Explicit ``workers`` wins; else the ``REPRO_PM_WORKERS`` environment
    variable; else the CPU count capped at ``8``.  Always ≥ 1.  The
    transforms are bit-identical for any value, so this is purely a
    throughput knob.
    """
    if workers is None:
        env = os.environ.get("REPRO_PM_WORKERS", "").strip()
        if env:
            workers = int(env)
        else:
            workers = min(os.cpu_count() or 1, _MAX_AUTO_WORKERS)
    return max(int(workers), 1)


def _rfftn(x: np.ndarray, workers: int) -> np.ndarray:
    if _sp_fft is not None:
        return _sp_fft.rfftn(x, workers=workers)
    return np.fft.rfftn(x)


def _irfftn(xk: np.ndarray, shape: tuple[int, ...], workers: int) -> np.ndarray:
    if _sp_fft is not None:
        return _sp_fft.irfftn(xk, s=shape, workers=workers)
    return np.fft.irfftn(xk, s=shape)


class PMSolver:
    """Stateful fused spectral PM solver for one mesh size ``ng``.

    Precomputes the k-grids and the combined Poisson+gradient kernels
    ``i·k_axis / k²`` once per ``ng`` and keeps per-particle-count
    scratch buffers alive across calls, so a steady-state force
    evaluation allocates only the FFT work arrays and the returned
    acceleration array.

    Parameters
    ----------
    ng:
        Mesh size per dimension.
    workers:
        FFT threads (see :func:`resolve_fft_workers`).

    Notes
    -----
    Arrays returned by :meth:`deposit` and :meth:`accelerations` are
    freshly allocated (safe to hold across calls); only internal scratch
    is reused.
    """

    def __init__(self, ng: int, workers: int | None = None):
        if ng < 2:
            raise ValueError("ng must be >= 2")
        self.ng = int(ng)
        self.workers = resolve_fft_workers(workers)
        self.fft_count = 0  # lifetime transforms (forward + inverse)

        k1 = 2.0 * np.pi * np.fft.fftfreq(self.ng)
        kz = 2.0 * np.pi * np.fft.rfftfreq(self.ng)
        kx = k1[:, None, None]
        ky = k1[None, :, None]
        kzb = kz[None, None, :]
        k2 = kx**2 + ky**2 + kzb**2
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_k2 = np.where(k2 > 0, 1.0 / k2, 0.0)
        #: Green's-function × gradient kernels, one per axis:
        #: ``a_k(axis) = factor * _grad_kernels[axis] * δ_k`` gives the
        #: acceleration mesh ``-∇φ`` for ``∇²φ = factor·δ`` directly.
        self._grad_kernels = tuple(
            (1j * k * inv_k2).astype(np.complex128) for k in (kx, ky, kzb)
        )
        self._inv_k2 = inv_k2
        # per-particle-count scratch (rebuilt only when n changes)
        self._scratch_n = -1
        self._flat: np.ndarray | None = None  # (8, n) corner flat indices
        self._w8: np.ndarray | None = None  # (8, n) corner weights
        self._gather: np.ndarray | None = None  # (8, n) gather landing pad

    # -- CIC geometry (shared by scatter and gather) --------------------------

    def _ensure_scratch(self, n: int) -> None:
        if n != self._scratch_n:
            self._flat = np.empty((8, n), dtype=np.intp)
            self._w8 = np.empty((8, n), dtype=np.float64)
            self._gather = np.empty((8, n), dtype=np.float64)
            self._scratch_n = n

    def _geometry(self, pos_grid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Corner flat indices and weights for CIC scatter *and* gather.

        Computed once per force evaluation into the reusable scratch
        buffers; corner order matches the reference implementation's
        ``(a, b, c) ∈ {0,1}³`` loop nest.
        """
        ng = self.ng
        pos = np.mod(np.asarray(pos_grid, dtype=np.float64), ng)
        n = len(pos)
        self._ensure_scratch(n)
        flat = self._flat
        w8 = self._w8
        assert flat is not None and w8 is not None

        i0 = np.floor(pos).astype(np.intp)
        frac = pos - i0
        i0 %= ng
        i1 = i0 + 1
        i1[i1 == ng] = 0

        wx = (1.0 - frac[:, 0], frac[:, 0])
        wy = (1.0 - frac[:, 1], frac[:, 1])
        wz = (1.0 - frac[:, 2], frac[:, 2])
        ix = (i0[:, 0], i1[:, 0])
        iy = (i0[:, 1], i1[:, 1])
        iz = (i0[:, 2], i1[:, 2])

        row = 0
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    np.multiply(wx[a], wy[b], out=w8[row])
                    w8[row] *= wz[c]
                    np.multiply(ix[a], ng, out=flat[row])
                    flat[row] += iy[b]
                    flat[row] *= ng
                    flat[row] += iz[c]
                    row += 1
        return flat, w8

    def _deposit_from_geometry(
        self, flat: np.ndarray, w8: np.ndarray, weights: np.ndarray | None
    ) -> np.ndarray:
        """Flattened-index ``bincount`` CIC accumulation → overdensity δ."""
        ng = self.ng
        if weights is None:
            wflat = w8.ravel()
            total = float(w8.shape[1])
        else:
            w = np.asarray(weights, dtype=np.float64)
            wflat = (w8 * w).ravel()
            total = float(w.sum())
        rho = np.bincount(flat.ravel(), weights=wflat, minlength=ng**3)
        rho = rho.reshape(ng, ng, ng)
        mean = total / ng**3
        if mean > 0:
            rho /= mean
        rho -= 1.0
        return rho

    # -- public kernels --------------------------------------------------------

    @guard_kernel(name="PMSolver.deposit")
    def deposit(
        self, pos_grid: np.ndarray, weights: np.ndarray | None = None
    ) -> np.ndarray:
        """CIC overdensity field (``bincount`` path).

        Equivalent to :func:`repro.sim.pm.cic_deposit` up to float
        summation order (agreement to ~1e-13 relative).
        """
        if len(np.atleast_2d(pos_grid)) == 0:
            return np.zeros((self.ng, self.ng, self.ng), dtype=np.float64)
        with timed("pm_deposit_seconds"):
            flat, w8 = self._geometry(np.atleast_2d(pos_grid))
            return self._deposit_from_geometry(flat, w8, weights)

    def potential(self, delta: np.ndarray, factor: float = 1.0) -> np.ndarray:
        """Real-space φ with ``∇²φ = factor·δ`` (cross-validation path).

        The fused force path never materializes φ; this method exists so
        tests can compare against :func:`repro.sim.pm.solve_poisson`.
        """
        with timed("pm_fft_seconds"):
            dk = _rfftn(np.asarray(delta, dtype=np.float64), self.workers)
            phik = -factor * self._inv_k2 * dk
            out = _irfftn(phik, delta.shape, self.workers)
        self._count_ffts(2)
        return out

    def inverse_gradient(self, delta: np.ndarray, factor: float = 1.0) -> np.ndarray:
        """Mesh field ``F`` with ``F_k = factor · i k δ_k / k²``.

        This is simultaneously the acceleration mesh ``-∇φ`` for
        ``∇²φ = factor·δ`` (grid wavenumbers) and — scaled by the cell
        size — the Zel'dovich displacement field ``ψ`` solving
        ``δ = -∇·ψ``.  4 transforms, φ never materialized.
        """
        delta = np.asarray(delta, dtype=np.float64)
        ng = self.ng
        with timed("pm_fft_seconds"):
            dk = _rfftn(delta, self.workers)
            out = np.empty((3, ng, ng, ng), dtype=np.float64)
            for axis, kern in enumerate(self._grad_kernels):
                out[axis] = _irfftn(factor * kern * dk, delta.shape, self.workers)
        self._count_ffts(4)
        return out

    @guard_kernel(name="PMSolver.accelerations")
    def accelerations(
        self,
        pos_grid: np.ndarray,
        factor: float,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """One fused PM force evaluation: deposit → k-space → gather.

        Returns per-particle accelerations ``-∇φ`` in grid units for
        ``∇²φ = factor·δ``; numerically equivalent to the reference
        ``cic_deposit → solve_poisson → gradient_spectral →
        cic_interpolate`` chain (rtol ≲ 1e-12) at 4 FFTs instead of 6
        and a single CIC geometry shared by scatter and gather.
        """
        pos = np.atleast_2d(np.asarray(pos_grid, dtype=np.float64))
        n = len(pos)
        ng = self.ng
        if n == 0:
            return np.zeros((0, 3), dtype=np.float64)

        # one CIC geometry for both the scatter and the gather
        flat, w8 = self._geometry(pos)
        with timed("pm_deposit_seconds"):
            delta = self._deposit_from_geometry(flat, w8, weights)

        with timed("pm_fft_seconds"):
            dk = _rfftn(delta, self.workers)

        acc = np.empty((n, 3), dtype=np.float64)
        gather = self._gather
        assert gather is not None
        for axis, kern in enumerate(self._grad_kernels):
            with timed("pm_fft_seconds"):
                mesh = _irfftn(factor * kern * dk, delta.shape, self.workers)
            with timed("pm_gather_seconds"):
                np.take(mesh.reshape(ng**3), flat, out=gather)
                np.einsum("cn,cn->n", w8, gather, out=acc[:, axis])
        self._count_ffts(4)
        rec = get_recorder()
        rec.counter("pm_force_evals_total").inc()
        return acc

    # -- accounting ------------------------------------------------------------

    def _count_ffts(self, k: int) -> None:
        self.fft_count += k
        get_recorder().counter("pm_fft_total").inc(k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PMSolver ng={self.ng} workers={self.workers} ffts={self.fft_count}>"


# -- per-process solver cache (one engine per (ng, workers)) -------------------

_SOLVER_CACHE: dict[tuple[int, int], PMSolver] = {}


def get_solver(ng: int, workers: int | None = None) -> PMSolver:
    """The shared :class:`PMSolver` for ``(ng, workers)``.

    Caching the solver preserves the precomputed k-grids / Green's
    functions and the CIC scratch buffers across force evaluations and
    across callers (simulation loop, Zel'dovich setup, free-function
    API).
    """
    key = (int(ng), resolve_fft_workers(workers))
    solver = _SOLVER_CACHE.get(key)
    if solver is None:
        solver = PMSolver(key[0], workers=key[1])
        _SOLVER_CACHE[key] = solver
    return solver


def clear_solver_cache() -> None:
    """Drop all cached solvers (test isolation / memory reclaim)."""
    _SOLVER_CACHE.clear()
