"""Mini-HACC: cosmological particle-mesh N-body simulation substrate.

Provides the Level 1 data producer the workflow framework analyzes:
ΛCDM background (:mod:`.cosmology`), Eisenstein–Hu linear power spectrum
(:mod:`.power`), Zel'dovich initial conditions
(:mod:`.initial_conditions`), CIC/FFT particle-mesh gravity (:mod:`.pm`),
and the time-stepping driver with CosmoTools hooks (:mod:`.hacc`).
"""

from .cosmology import Cosmology, QCONTINUUM_COSMOLOGY, a_of_z, z_of_a
from .hacc import HACCSimulation, SimulationConfig, StepRecord
from .initial_conditions import ICConfig, gaussian_field, make_initial_conditions, za_displacements
from .particles import BYTES_PER_PARTICLE, LEVEL1_SCHEMA, Particles
from .pm import cic_deposit, cic_interpolate, gradient_spectral, pm_accelerations, solve_poisson
from .pmsolver import PMSolver, get_solver
from .power import LinearPower, transfer_eisenstein_hu

__all__ = [
    "Cosmology",
    "QCONTINUUM_COSMOLOGY",
    "a_of_z",
    "z_of_a",
    "HACCSimulation",
    "SimulationConfig",
    "StepRecord",
    "ICConfig",
    "gaussian_field",
    "make_initial_conditions",
    "za_displacements",
    "BYTES_PER_PARTICLE",
    "LEVEL1_SCHEMA",
    "Particles",
    "cic_deposit",
    "cic_interpolate",
    "gradient_spectral",
    "pm_accelerations",
    "solve_poisson",
    "PMSolver",
    "get_solver",
    "LinearPower",
    "transfer_eisenstein_hu",
]
