"""Particle-mesh gravity: CIC deposit, FFT Poisson solve, force interpolation.

The long-range solver of the mini-HACC simulation.  HACC itself uses a
spectral particle-mesh method for the long-range force (plus short-range
corrections we omit — at our resolutions the PM force is sufficient to
form the clustered halo population the workflow analysis needs).

All functions work in *grid units*: positions in ``[0, ng)`` cells, the
density field is the overdensity ``delta = rho/rho_bar - 1`` on an
``ng^3`` periodic mesh.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cic_deposit",
    "cic_interpolate",
    "solve_poisson",
    "gradient_spectral",
    "pm_accelerations",
]


def cic_deposit(
    pos_grid: np.ndarray,
    ng: int,
    weights: np.ndarray | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Cloud-in-cell mass deposit onto a periodic ``ng^3`` mesh.

    Parameters
    ----------
    pos_grid:
        ``(n, 3)`` positions in grid units ``[0, ng)``.
    ng:
        Mesh size per dimension.
    weights:
        Optional per-particle masses (default 1).
    normalize:
        When true (default) return the zero-mean overdensity
        ``delta = rho/rho_bar - 1``.  When false return the *raw* mass
        mesh — additive across particle subsets, which is what one-pass
        streaming accumulation folds chunk by chunk before normalizing
        once at the end.

    Returns
    -------
    The overdensity field ``delta`` with zero mean (or the raw mass
    mesh when ``normalize=False``).
    """
    pos = np.mod(np.asarray(pos_grid, dtype=np.float64), ng)
    n = len(pos)
    rho = np.zeros((ng, ng, ng), dtype=np.float64)
    if n == 0:
        return rho
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)

    i0 = np.floor(pos).astype(np.intp)
    frac = pos - i0
    i0 %= ng
    i1 = (i0 + 1) % ng

    wx = (1.0 - frac[:, 0], frac[:, 0])
    wy = (1.0 - frac[:, 1], frac[:, 1])
    wz = (1.0 - frac[:, 2], frac[:, 2])
    ix = (i0[:, 0], i1[:, 0])
    iy = (i0[:, 1], i1[:, 1])
    iz = (i0[:, 2], i1[:, 2])

    for a in (0, 1):
        for b in (0, 1):
            for c in (0, 1):
                np.add.at(rho, (ix[a], iy[b], iz[c]), w * wx[a] * wy[b] * wz[c])

    if not normalize:
        return rho
    mean = w.sum() / ng**3
    rho /= mean
    rho -= 1.0
    return rho


def cic_interpolate(field: np.ndarray, pos_grid: np.ndarray) -> np.ndarray:
    """Cloud-in-cell interpolation of a mesh ``field`` to particle positions.

    ``field`` may have shape ``(ng, ng, ng)`` (scalar) or
    ``(k, ng, ng, ng)`` (vector components); the result has shape ``(n,)``
    or ``(n, k)`` respectively.
    """
    field = np.asarray(field)
    vector = field.ndim == 4
    ng = field.shape[-1]
    pos = np.mod(np.asarray(pos_grid, dtype=np.float64), ng)
    n = len(pos)

    i0 = np.floor(pos).astype(np.intp)
    frac = pos - i0
    i0 %= ng
    i1 = (i0 + 1) % ng

    wx = (1.0 - frac[:, 0], frac[:, 0])
    wy = (1.0 - frac[:, 1], frac[:, 1])
    wz = (1.0 - frac[:, 2], frac[:, 2])
    ix = (i0[:, 0], i1[:, 0])
    iy = (i0[:, 1], i1[:, 1])
    iz = (i0[:, 2], i1[:, 2])

    if vector:
        out = np.zeros((n, field.shape[0]))
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    w = wx[a] * wy[b] * wz[c]
                    out += w[:, None] * field[:, ix[a], iy[b], iz[c]].T
        return out
    out_s = np.zeros(n)
    for a in (0, 1):
        for b in (0, 1):
            for c in (0, 1):
                out_s += wx[a] * wy[b] * wz[c] * field[ix[a], iy[b], iz[c]]
    return out_s


def _k_grid(ng: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Angular wavenumbers (grid units) for an rfftn-layout mesh."""
    k1 = 2.0 * np.pi * np.fft.fftfreq(ng)
    kz = 2.0 * np.pi * np.fft.rfftfreq(ng)
    return k1[:, None, None], k1[None, :, None], kz[None, None, :]


def solve_poisson(delta: np.ndarray, factor: float = 1.0) -> np.ndarray:
    """Solve ``∇²φ = factor * delta`` on the periodic mesh (spectral).

    Uses the exact spectral Green's function ``-1/k²`` with the k=0 mode
    zeroed (the mean of phi is gauge).
    """
    ng = delta.shape[0]
    dk = np.fft.rfftn(delta)
    kx, ky, kz = _k_grid(ng)
    k2 = kx**2 + ky**2 + kz**2
    with np.errstate(divide="ignore", invalid="ignore"):
        phik = np.where(k2 > 0, -factor * dk / k2, 0.0)
    return np.fft.irfftn(phik, s=delta.shape, axes=(0, 1, 2))


def gradient_spectral(field: np.ndarray) -> np.ndarray:
    """Spectral gradient of a periodic mesh field; shape ``(3, ng, ng, ng)``."""
    ng = field.shape[0]
    fk = np.fft.rfftn(field)
    kx, ky, kz = _k_grid(ng)
    out = np.empty((3, *field.shape))
    for axis, k in enumerate((kx, ky, kz)):
        out[axis] = np.fft.irfftn(1j * k * fk, s=field.shape, axes=(0, 1, 2))
    return out


def pm_accelerations(
    pos_grid: np.ndarray,
    ng: int,
    poisson_factor: float,
    method: str = "fused",
    workers: int | None = None,
) -> np.ndarray:
    """One full PM force evaluation; per-particle ``-∇φ`` in grid units.

    ``method="fused"`` (the default) runs on the shared
    :class:`~repro.sim.pmsolver.PMSolver`: Poisson and gradient applied
    together in k-space (4 FFTs, φ never materialized), ``bincount``
    CIC deposit, and one CIC geometry shared by scatter and gather.
    ``method="reference"`` keeps the original function-at-a-time
    pipeline (6 FFTs, ``np.add.at`` deposit) as the cross-validation
    baseline — the two agree to near machine precision.
    """
    if method == "fused":
        from .pmsolver import get_solver

        return get_solver(ng, workers).accelerations(pos_grid, poisson_factor)
    if method != "reference":
        raise ValueError(f"unknown PM method {method!r} (fused|reference)")
    delta = cic_deposit(pos_grid, ng)
    phi = solve_poisson(delta, factor=poisson_factor)
    grad = gradient_spectral(phi)
    return -cic_interpolate(grad, pos_grid)
