"""The mini-HACC simulation driver with CosmoTools in-situ hooks.

Evolves the Zel'dovich-seeded particle set from ``z_initial`` to
``z_final`` with a kick-drift-kick particle-mesh integrator, invoking the
registered in-situ analysis manager at every step exactly as HACC invokes
CosmoTools inside its main physics loop (paper §3.1: "a simple interface
that can be invoked within the main physics loop").

Equations of motion (Kravtsov PM formulation, positions ``x`` and
momenta ``p = a² dx/d(H0 t)`` in box-length units, time variable the
scale factor)::

    dx/da = f(a) p / a²          f(a) = 1 / (a E(a))
    dp/da = -f(a) ∇φ             ∇²φ = (3 Ω_m / 2a) δ

The Poisson solve runs on the force mesh in grid-cell units; mesh
accelerations are converted to box units by one factor of the cell size,
so particle state is independent of the mesh resolution ``ng``.

The driver also keeps per-step wall-clock and operation-count
instrumentation; the workflow cost model consumes these to extrapolate
paper-scale timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs import get_recorder
from .cosmology import Cosmology, QCONTINUUM_COSMOLOGY, a_of_z, z_of_a
from .initial_conditions import ICConfig, make_initial_conditions
from .particles import Particles
from .pm import cic_interpolate, cic_deposit, gradient_spectral, solve_poisson
from .pmsolver import get_solver

__all__ = ["SimulationConfig", "StepRecord", "HACCSimulation"]

#: Analysis-context timing keys counted as in-situ I/O time (the writers
#: and the in-transit stager) — the source of ``StepRecord.io_seconds``.
_IO_TIMING_KEYS = (
    "level1_write_seconds",
    "level2_write_seconds",
    "level2_stage_seconds",
)


def _io_seconds_from_context(context) -> float:
    """Total in-situ I/O seconds recorded by a step's analysis context.

    Tolerates bare analysis managers (test spies) whose ``execute``
    returns ``None`` or a context without timings.
    """
    timings = getattr(context, "timings", None)
    if not isinstance(timings, dict):
        return 0.0
    return float(sum(timings.get(key, 0.0) for key in _IO_TIMING_KEYS))


@dataclass(frozen=True)
class SimulationConfig:
    """Mini-HACC run parameters (the "input deck" basics).

    ``ng`` defaults to the particle grid size (HACC typically matches
    particle count and grid size — paper §3: "typically, the particle
    number and grid size are the same").
    """

    np_per_dim: int = 32
    box: float = 64.0
    z_initial: float = 50.0
    z_final: float = 0.0
    n_steps: int = 60
    ng: int | None = None
    seed: int = 12345
    #: PM force engine: ``"fused"`` (the :class:`~repro.sim.pmsolver.PMSolver`
    #: 4-FFT path, default) or ``"reference"`` (the original 6-FFT
    #: function-at-a-time pipeline, kept for cross-validation).
    pm_backend: str = "fused"
    #: FFT threads for the fused solver (None = auto; bit-identical
    #: results for any value).
    fft_workers: int | None = None

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.z_final >= self.z_initial:
            raise ValueError("z_final must be < z_initial")
        if self.pm_backend not in ("fused", "reference"):
            raise ValueError(
                f"pm_backend must be 'fused' or 'reference', got {self.pm_backend!r}"
            )

    @property
    def mesh_size(self) -> int:
        return self.ng if self.ng is not None else self.np_per_dim

    @property
    def n_particles(self) -> int:
        return self.np_per_dim**3


@dataclass
class StepRecord:
    """Timing/accounting for one simulation step.

    ``io_seconds`` is the in-situ I/O share of ``analysis_seconds``:
    the sum of the Level 1 / Level 2 writer (or in-transit stager)
    timings recorded in the step's analysis context.
    """

    step: int
    a: float
    z: float
    force_seconds: float = 0.0
    analysis_seconds: float = 0.0
    io_seconds: float = 0.0


class HACCSimulation:
    """Mini-HACC: PM N-body evolution with in-situ analysis hooks.

    Parameters
    ----------
    config:
        Run parameters.
    cosmo:
        Background cosmology (defaults to the Q Continuum cosmology).
    analysis_manager:
        Optional object with an ``execute(sim, step, a)`` method — the
        CosmoTools :class:`~repro.insitu.manager.InSituAnalysisManager`.
        Invoked after every completed step (and once for the initial
        state at step 0 if ``call_at_start``).
    """

    def __init__(
        self,
        config: SimulationConfig,
        cosmo: Cosmology = QCONTINUUM_COSMOLOGY,
        analysis_manager=None,
        call_at_start: bool = False,
    ):
        self.config = config
        self.cosmo = cosmo
        self.analysis_manager = analysis_manager
        self.call_at_start = call_at_start

        self.particles: Particles = make_initial_conditions(
            ICConfig(
                np_per_dim=config.np_per_dim,
                box=config.box,
                z_initial=config.z_initial,
                seed=config.seed,
            ),
            cosmo,
        )
        self.a = float(a_of_z(config.z_initial))
        self.a_final = float(a_of_z(config.z_final))
        # fixed scale-factor step, precomputed once (advance_step used to
        # recompute a_of_z(z_initial) — a root find — on every step)
        self._da = (self.a_final - self.a) / config.n_steps
        self.step = 0
        self.records: list[StepRecord] = []
        self._accel_cache: np.ndarray | None = None
        # conversion: positions stored in box units; PM works in grid cells
        self._cell = config.box / config.mesh_size
        #: the fused spectral PM engine (shared per (ng, workers) so the
        #: k-grids / Green's functions / CIC scratch persist across steps)
        self.pm = get_solver(config.mesh_size, workers=config.fft_workers)

    # -- mesh-unit helpers -------------------------------------------------

    @property
    def grid_positions(self) -> np.ndarray:
        """Particle positions in grid-cell units."""
        return self.particles.pos / self._cell

    def _compute_accelerations(self, a: float) -> np.ndarray:
        ng = self.config.mesh_size
        pos_grid = self.grid_positions
        factor = self.cosmo.poisson_factor(a)
        if self.config.pm_backend == "fused":
            # fused spectral engine: 4 FFTs, bincount deposit, one CIC
            # geometry shared by scatter and gather
            accel = self.pm.accelerations(pos_grid, factor)
        else:
            delta = cic_deposit(pos_grid, ng)
            phi = solve_poisson(delta, factor=factor)
            grad = gradient_spectral(phi)
            accel = -cic_interpolate(grad, pos_grid)
        # mesh acceleration (grid units) -> box units: one factor of cell
        return accel * self._cell

    # -- main loop -----------------------------------------------------------

    @property
    def z(self) -> float:
        """Current redshift."""
        return float(z_of_a(self.a))

    def run(self) -> list[StepRecord]:
        """Evolve to ``z_final``, invoking the analysis hook per step."""
        rec = get_recorder()
        with rec.span("sim.run", n_steps=self.config.n_steps):
            if self.call_at_start and self.analysis_manager is not None:
                self._invoke_analysis()
            while self.step < self.config.n_steps:
                self.advance_step()
        rec.event("sim.done", step=self.step, z=self.z)
        return self.records

    def advance_step(self) -> StepRecord:
        """One kick-drift-kick step in the scale factor."""
        rec = get_recorder()
        da = self._da  # precomputed in __init__ (fixed across the run)
        a0 = self.a
        a1 = a0 + da
        a_half = 0.5 * (a0 + a1)

        with rec.span("sim.step", step=self.step + 1):
            t0 = time.perf_counter()
            with rec.span("sim.force", step=self.step + 1):
                if self._accel_cache is None:
                    self._accel_cache = self._compute_accelerations(a0)

                # kick (half) at a0
                p = self.particles.vel
                p += self._accel_cache * (self.cosmo.f_drift(a0) * 0.5 * da)

                # drift (full) with midpoint factor
                drift = float(self.cosmo.f_drift(a_half) / a_half**2) * da
                self.particles.pos += p * drift
                self.particles.wrap()

                # new force at a1, kick (half)
                accel = self._compute_accelerations(a1)
                p += accel * (self.cosmo.f_drift(a1) * 0.5 * da)
                self._accel_cache = accel
            force_seconds = time.perf_counter() - t0

            self.a = a1
            self.step += 1
            record = StepRecord(
                step=self.step, a=self.a, z=self.z, force_seconds=force_seconds
            )
            self.records.append(record)
            rec.counter("sim_steps_total").inc()
            rec.histogram("sim_force_seconds").observe(force_seconds)

            if self.analysis_manager is not None:
                t1 = time.perf_counter()
                context = self._invoke_analysis()
                record.analysis_seconds = time.perf_counter() - t1
                record.io_seconds = _io_seconds_from_context(context)
        return record

    def _invoke_analysis(self):
        return self.analysis_manager.execute(self, self.step, self.a)

    # -- convenience -----------------------------------------------------------

    def snapshot(self, into: Particles | None = None) -> Particles:
        """Deep copy of the current particle state (a Level 1 product).

        With ``into`` (a buffer from a previous snapshot) the state is
        copied into the existing arrays instead of allocating — the
        double-buffer path the pipelined in-situ manager uses so step
        *t*'s snapshot can be analysed while step *t+1* advances, at a
        steady-state cost of two extra particle buffers total.
        """
        if into is not None and len(into) == len(self.particles):
            return self.particles.copy_into(into)
        return self.particles.copy()
