"""FLRW background cosmology: expansion history and linear growth.

Provides the small amount of background cosmology the mini-HACC
simulation and its initial-condition generator need: the normalized
Hubble rate ``E(a)``, the linear growth factor ``D(a)`` (flat
matter + Lambda universe, computed by quadrature), the growth rate
``f = dlnD/dlna``, and redshift/scale-factor conversions.

Default parameters approximate the WMAP-7-like cosmology used by the
Q Continuum simulation (Heitmann et al. 2015).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import integrate

__all__ = ["Cosmology", "QCONTINUUM_COSMOLOGY", "a_of_z", "z_of_a"]


def a_of_z(z: float | np.ndarray) -> float | np.ndarray:
    """Scale factor for redshift ``z`` (``a = 1`` today)."""
    return 1.0 / (1.0 + np.asarray(z, dtype=float))


def z_of_a(a: float | np.ndarray) -> float | np.ndarray:
    """Redshift for scale factor ``a``."""
    return 1.0 / np.asarray(a, dtype=float) - 1.0


@dataclass(frozen=True)
class Cosmology:
    """Flat ΛCDM background.

    Parameters
    ----------
    omega_m:
        Total matter density parameter today.
    omega_b:
        Baryon density parameter today (used by the transfer function).
    h:
        Dimensionless Hubble parameter, ``H0 = 100 h km/s/Mpc``.
    sigma8:
        RMS linear density fluctuation in 8 Mpc/h spheres at z=0
        (normalizes the power spectrum).
    n_s:
        Primordial spectral index.
    """

    omega_m: float = 0.265
    omega_b: float = 0.0448
    h: float = 0.71
    sigma8: float = 0.8
    n_s: float = 0.963

    def __post_init__(self) -> None:
        if not 0 < self.omega_m <= 1:
            raise ValueError("omega_m must be in (0, 1]")
        if not 0 <= self.omega_b < self.omega_m:
            raise ValueError("omega_b must be in [0, omega_m)")
        if self.h <= 0 or self.sigma8 <= 0:
            raise ValueError("h and sigma8 must be positive")

    @property
    def omega_lambda(self) -> float:
        """Dark-energy density parameter (flatness: 1 - omega_m)."""
        return 1.0 - self.omega_m

    # -- expansion history ------------------------------------------------

    def efunc(self, a: float | np.ndarray) -> float | np.ndarray:
        """Normalized Hubble rate ``E(a) = H(a)/H0``."""
        a = np.asarray(a, dtype=float)
        return np.sqrt(self.omega_m / a**3 + self.omega_lambda)

    def omega_m_a(self, a: float | np.ndarray) -> float | np.ndarray:
        """Matter density parameter at scale factor ``a``."""
        a = np.asarray(a, dtype=float)
        return self.omega_m / (a**3 * self.efunc(a) ** 2)

    # -- linear growth ----------------------------------------------------

    def growth_factor(self, a: float | np.ndarray) -> float | np.ndarray:
        """Linear growth factor ``D(a)`` normalized to ``D(1) = 1``.

        Uses the standard quadrature solution for flat ΛCDM:

        ``D(a) ∝ E(a) ∫_0^a da' / (a' E(a'))^3``.
        """
        norm = self._growth_unnormalized(1.0)
        a_arr = np.atleast_1d(np.asarray(a, dtype=float))
        out = np.asarray([self._growth_unnormalized(ai) for ai in a_arr]) / norm
        return float(out[0]) if np.isscalar(a) or np.asarray(a).ndim == 0 else out

    @lru_cache(maxsize=4096)
    def _growth_unnormalized(self, a: float) -> float:
        if a <= 0:
            return 0.0
        integrand = lambda x: 1.0 / (x * self.efunc(x)) ** 3  # noqa: E731
        val, _ = integrate.quad(integrand, 1e-8, a, limit=200)
        return 2.5 * self.omega_m * self.efunc(a) * val

    def growth_rate(self, a: float | np.ndarray) -> float | np.ndarray:
        """Logarithmic growth rate ``f = dlnD/dlna ≈ Ωm(a)^0.55``."""
        return self.omega_m_a(a) ** 0.55

    # -- PM code-unit helpers ----------------------------------------------

    def f_drift(self, a: float | np.ndarray) -> float | np.ndarray:
        """``f(a) = H0 / (a H(a)) = 1/(a E(a))`` — the PM time-step factor.

        With positions in grid cells and momenta ``p = a^2 dx/d(H0 t)``,
        the PM equations of motion are ``dx/da = f(a) p / a^2`` and
        ``dp/da = -f(a) grad(phi)`` (Kravtsov's PM formulation).
        """
        a = np.asarray(a, dtype=float)
        return 1.0 / (a * self.efunc(a))

    def poisson_factor(self, a: float) -> float:
        """RHS factor in the code-unit Poisson equation ``∇²φ = (3Ωm/2a) δ``."""
        return 1.5 * self.omega_m / a


#: The cosmology of the Q Continuum run (Heitmann et al. 2015).
QCONTINUUM_COSMOLOGY = Cosmology(
    omega_m=0.265, omega_b=0.0448, h=0.71, sigma8=0.8, n_s=0.963
)
