"""repro.service — the Balsam-style persistent campaign service.

The paper's combined workflow leaves one operational gap: the off-line
leg is a *campaign* — thousands of small center/subhalo jobs spread
over weeks — and facility queue policies (Titan: at most two sub-125-
node jobs at once, :class:`repro.machines.machine.QueuePolicy`) make
submitting them individually impossible.  Balsam, the service this
package reproduces in miniature, solves that with three pieces this
package mirrors one-to-one (see ``docs/service.md``):

* a **durable job store** (:mod:`repro.service.store`) — campaigns are
  submitted as named, crash-safe resources journaled with the
  :mod:`repro.obs.journal` idioms (append-only JSONL, atomic manifest,
  torn-tail recovery), moving through an explicit, *enforced* state
  machine (:mod:`repro.service.states`)::

      CREATED -> STAGED_IN -> PREPROCESSED -> RUNNING -> RUN_DONE
              -> POSTPROCESSED -> JOB_FINISHED

  with a ``FAILED`` edge from every active state, requeue-or-dead-letter
  semantics wired into :mod:`repro.faults`;
* a **job packer** (:mod:`repro.service.packer`) — Balsam's ``boxpack``:
  deterministic shelf packing of small jobs into node-width × wall-time
  rectangles priced by the calibrated cost model
  (:mod:`repro.machines.cost`), so the facility sees a few large
  policy-friendly allocations;
* a **pull-based worker** (:mod:`repro.service.worker`) — launchers
  drain the store (the store never pushes), each job driven through the
  full lifecycle under the shared retry policy with per-job
  ``"service.job"`` fault injection, and a ``crash_after_transitions``
  hard-kill drill hook proving kill → ``resume`` → bit-identical
  outcome (:meth:`repro.service.store.CampaignStore.fingerprint`).

:class:`~repro.service.service.CampaignService` is the facade gluing
the three to the existing discrete-event scheduler (one scheduler job
per packed allocation); ``python -m repro.service`` is the operator CLI
(``init`` / ``submit`` / ``ls`` / ``status`` / ``pack`` / ``work`` /
``resume``).
"""

from .packer import JobPacker, PackedAllocation, estimate_center_job
from .service import CampaignService
from .states import (
    ACTIVE_STATES,
    IN_FLIGHT_STATES,
    LEGAL_TRANSITIONS,
    LIFECYCLE_ORDER,
    RECOVERY_TRANSITIONS,
    TERMINAL_STATES,
    IllegalTransition,
    JobState,
    validate_transition,
)
from .store import (
    JOBS_FILE,
    LOCK_FILE,
    MANIFEST_FILE,
    STORE_FORMAT,
    CampaignInfo,
    CampaignStore,
    IllegalDeadLetter,
    JobRecord,
    JobSpec,
    StoreCorruptError,
    StoreLockedError,
    StoreManifest,
)
from .worker import (
    PAYLOADS,
    PayloadFn,
    ServiceWorker,
    payload_digest,
    register_payload,
    run_payload,
)

__all__ = [
    "ACTIVE_STATES",
    "IN_FLIGHT_STATES",
    "JOBS_FILE",
    "LEGAL_TRANSITIONS",
    "LIFECYCLE_ORDER",
    "LOCK_FILE",
    "MANIFEST_FILE",
    "PAYLOADS",
    "RECOVERY_TRANSITIONS",
    "STORE_FORMAT",
    "TERMINAL_STATES",
    "CampaignInfo",
    "CampaignService",
    "CampaignStore",
    "IllegalDeadLetter",
    "IllegalTransition",
    "JobPacker",
    "JobRecord",
    "JobSpec",
    "JobState",
    "PackedAllocation",
    "PayloadFn",
    "ServiceWorker",
    "StoreCorruptError",
    "StoreLockedError",
    "StoreManifest",
    "estimate_center_job",
    "payload_digest",
    "register_payload",
    "run_payload",
    "validate_transition",
]
