"""``python -m repro.service`` — the campaign-service operator surface.

Every subcommand works on a durable :class:`~repro.service.store.CampaignStore`
directory, so campaigns survive the submitting process (the Balsam
property this service reproduces):

* ``init``    — create a fresh store directory
* ``submit``  — submit a campaign from a JSON spec file, or ``--demo N``
  seeded synthetic center jobs
* ``ls``      — list jobs (filter by campaign / state)
* ``status``  — per-campaign state counts + the store fingerprint
* ``pack``    — dry-run the boxpack shelf packer; print the allocations
* ``work``    — run a pull worker over the pending set
  (``--crash-after N`` arms the hard-kill drill)
* ``resume``  — crash recovery: roll stranded in-flight jobs back to
  pending, then drain them (``--no-work`` to recover only)

``ls``/``status``/``pack`` open the store read-only, so they work while
a worker holds the single-writer lock; a second concurrent writer
(``work``/``submit``/``resume``) exits ``2`` with a clear message
instead of corrupting the journal.

Exit codes: ``0`` success, ``1`` the store holds dead-lettered jobs
after the command, ``2`` usage/environment errors.

This module is the CLI surface, so it prints; library code must not
(rule RPR010 routes library output through ``repro.obs`` events).

The crash/resume drill from ``docs/service.md``, end to end::

    python -m repro.service init /tmp/store
    python -m repro.service submit /tmp/store --campaign demo --demo 8
    python -m repro.service work /tmp/store --crash-after 7   # dies: exit 2
    python -m repro.service resume /tmp/store                 # finishes
    python -m repro.service status /tmp/store
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .packer import JobPacker
from .states import JobState
from .store import CampaignStore, JobSpec, StoreCorruptError, StoreLockedError
from .worker import ServiceWorker

__all__ = ["demo_specs", "main", "read_specs"]


def read_specs(path: str) -> list[JobSpec]:
    """Load a campaign spec file: a JSON list of JobSpec dicts."""
    with open(path, encoding="utf-8") as fh:
        raw = json.load(fh)
    if not isinstance(raw, list):
        raise ValueError(f"{path}: expected a JSON list of job specs")
    specs: list[JobSpec] = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ValueError(f"{path}: spec #{i} needs at least a 'name'")
        specs.append(
            JobSpec(
                name=str(entry["name"]),
                kind=str(entry.get("kind", "noop")),
                params=dict(entry.get("params") or {}),
                n_nodes=int(entry.get("n_nodes", 1)),
                wall_estimate=float(entry.get("wall_estimate", 1.0)),
                max_requeues=int(entry.get("max_requeues", 1)),
            )
        )
    return specs


def demo_specs(n: int, seed: int = 0) -> list[JobSpec]:
    """``n`` deterministic synthetic center-finding jobs (the demo load)."""
    return [
        JobSpec(
            name=f"centers-{i:03d}",
            kind="synthetic_centers",
            params={"seed": seed * 100_003 + i},
            n_nodes=1,
            wall_estimate=30.0 + (i % 5) * 15.0,
        )
        for i in range(n)
    ]


def _dead_letter_exit(store: CampaignStore) -> int:
    """Shared exit-code policy: 1 when any job was dead-lettered."""
    return 1 if any(j.dead_lettered for j in store.jobs.values()) else 0


def _cmd_init(args: argparse.Namespace) -> int:
    store = CampaignStore.create(args.store, seed=args.seed)
    store.close()
    print(f"initialized campaign store at {args.store}")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    if (args.spec is None) == (args.demo is None):
        print("error: pass exactly one of --spec or --demo", file=sys.stderr)
        return 2
    if args.spec is not None:
        specs = read_specs(args.spec)
    else:
        specs = demo_specs(args.demo, seed=args.demo_seed)
    with CampaignStore.open(args.store) as store:
        jobs = store.submit_campaign(args.campaign, specs, seed=args.demo_seed)
        print(f"submitted campaign {args.campaign!r}: {len(jobs)} jobs")
        for job in jobs[:10]:
            print(f"  {job.id}  {job.kind}  {job.wall_estimate:.0f}s")
        if len(jobs) > 10:
            print(f"  ... and {len(jobs) - 10} more")
    return 0


def _cmd_ls(args: argparse.Namespace) -> int:
    state = JobState(args.state) if args.state else None
    with CampaignStore.open(args.store, readonly=True) as store:
        rows = list(store.iter_jobs(campaign=args.campaign, state=state))
        for job in sorted(rows, key=lambda j: j.id):
            flag = " [dead-letter]" if job.dead_lettered else ""
            print(
                f"{job.id:<24} {job.state.value:<14} attempts={job.attempts}"
                f" kind={job.kind}{flag}"
            )
        print(f"{len(rows)} job(s)")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    with CampaignStore.open(args.store, readonly=True) as store:
        status = store.status()
        payload: dict[str, Any] = {
            "store": str(args.store),
            "campaigns": status,
            "done": store.done,
            "fingerprint": store.fingerprint(),
            "dead_letters": store.dead_letter.total,
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for name, counts in sorted(status.items()):
                parts = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
                print(f"{name}: {parts}")
            print(f"done: {store.done}")
            print(f"fingerprint: {payload['fingerprint']}")
            if payload["dead_letters"]:
                print(f"dead letters: {payload['dead_letters']}")
        return _dead_letter_exit(store)


def _cmd_pack(args: argparse.Namespace) -> int:
    with CampaignStore.open(args.store, readonly=True) as store:
        packer = JobPacker(max_nodes=args.max_nodes, max_wall=args.max_wall)
        allocations = packer.pack(store.pending(campaign=args.campaign))
        for alloc in allocations:
            print(
                f"{alloc.name}: {alloc.n_nodes} nodes x {alloc.wall_seconds:.0f}s, "
                f"{alloc.n_jobs} jobs, utilization {alloc.utilization:.0%}"
            )
        print(f"{len(allocations)} allocation(s)")
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    with CampaignStore.open(args.store) as store:
        worker = ServiceWorker(store, crash_after_transitions=args.crash_after)
        finished = worker.drain(max_jobs=args.max_jobs, campaign=args.campaign)
        print(f"finished {finished} job(s)")
        return _dead_letter_exit(store)


def _cmd_resume(args: argparse.Namespace) -> int:
    with CampaignStore.open(args.store) as store:
        rolled = store.recover()
        if store.recovered_bytes:
            print(f"recovered torn journal tail ({store.recovered_bytes} bytes)")
        print(f"rolled {len(rolled)} stranded job(s) back to CREATED")
        if args.no_work:
            return 0
        finished = ServiceWorker(store).drain()
        print(f"finished {finished} job(s)")
        return _dead_letter_exit(store)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Balsam-style persistent campaign service over a durable store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create a fresh campaign store")
    p.add_argument("store", help="store directory (created if missing)")
    p.add_argument("--seed", type=int, default=0, help="store seed (manifest)")
    p.set_defaults(func=_cmd_init)

    p = sub.add_parser("submit", help="submit a campaign of jobs")
    p.add_argument("store")
    p.add_argument("--campaign", required=True, help="campaign name (unique per store)")
    p.add_argument("--spec", help="JSON spec file (a list of job-spec dicts)")
    p.add_argument("--demo", type=int, help="submit N seeded synthetic center jobs")
    p.add_argument("--demo-seed", type=int, default=0, help="seed for --demo jobs")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("ls", help="list jobs")
    p.add_argument("store")
    p.add_argument("--campaign", help="only this campaign")
    p.add_argument(
        "--state", choices=[s.value for s in JobState], help="only this state"
    )
    p.set_defaults(func=_cmd_ls)

    p = sub.add_parser("status", help="per-campaign state counts + fingerprint")
    p.add_argument("store")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("pack", help="dry-run the job packer over pending jobs")
    p.add_argument("store")
    p.add_argument("--campaign", help="only this campaign")
    p.add_argument(
        "--max-nodes", type=int, default=128, help="allocation width (nodes)"
    )
    p.add_argument(
        "--max-wall", type=float, default=3600.0, help="allocation wall limit (s)"
    )
    p.set_defaults(func=_cmd_pack)

    p = sub.add_parser("work", help="run a pull worker over the pending set")
    p.add_argument("store")
    p.add_argument("--campaign", help="only this campaign")
    p.add_argument("--max-jobs", type=int, help="stop after pulling N jobs")
    p.add_argument(
        "--crash-after",
        type=int,
        help="drill: hard-kill (exit 2) after N state transitions",
    )
    p.set_defaults(func=_cmd_work)

    p = sub.add_parser("resume", help="crash recovery: roll back + drain")
    p.add_argument("store")
    p.add_argument(
        "--no-work", action="store_true", help="recover only; do not run a worker"
    )
    p.set_defaults(func=_cmd_resume)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except (
        FileNotFoundError,
        FileExistsError,
        StoreCorruptError,
        StoreLockedError,
        ValueError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
