"""The campaign-service job lifecycle: an explicit, enforced state machine.

Balsam's job-packing service (see PAPERS.md and ``docs/service.md``)
moves every job through a fixed lifecycle; the repro campaign service
adopts the same states so a store can be audited against the paper's
off-line workflow hops::

    CREATED -> STAGED_IN -> PREPROCESSED -> RUNNING -> RUN_DONE
            -> POSTPROCESSED -> JOB_FINISHED

Every *active* state (anything between ``CREATED`` and the terminal
``JOB_FINISHED``) also has an edge to ``FAILED``; ``FAILED`` has exactly
one outgoing edge, the *requeue* (``FAILED -> CREATED``), taken while a
job still has requeue budget.  A job that exhausts its budget stays
``FAILED`` forever and is dead-lettered through
:class:`repro.faults.DeadLetterBox` — the same terminal-failure sink
the scheduler and exec engine use.

One more edge class exists only during **crash recovery**
(:meth:`repro.service.store.CampaignStore.recover`): a worker that died
mid-lifecycle leaves jobs stranded in an in-flight state, and the store
rolls them back to ``CREATED`` so a resumed worker re-derives the same
pending set an uninterrupted run would have processed.  Those
``<in-flight> -> CREATED`` rollbacks are *not* legal for normal
transitions — :func:`validate_transition` only admits them with
``recovery=True`` — so ordinary worker code can never silently rewind a
job.

Everything here is pure data + validation: no I/O, no clock, no
telemetry.  The durable record of each transition lives in
:mod:`repro.service.store`.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "ACTIVE_STATES",
    "IN_FLIGHT_STATES",
    "JobState",
    "LEGAL_TRANSITIONS",
    "LIFECYCLE_ORDER",
    "RECOVERY_TRANSITIONS",
    "TERMINAL_STATES",
    "IllegalTransition",
    "validate_transition",
]


class JobState(str, Enum):
    """One job's position in the service lifecycle."""

    CREATED = "CREATED"
    STAGED_IN = "STAGED_IN"
    PREPROCESSED = "PREPROCESSED"
    RUNNING = "RUNNING"
    RUN_DONE = "RUN_DONE"
    POSTPROCESSED = "POSTPROCESSED"
    JOB_FINISHED = "JOB_FINISHED"
    FAILED = "FAILED"

    def __str__(self) -> str:  # "RUNNING", not "JobState.RUNNING"
        return self.value


#: The happy path, in order (each state's successor is the next entry).
LIFECYCLE_ORDER: tuple[JobState, ...] = (
    JobState.CREATED,
    JobState.STAGED_IN,
    JobState.PREPROCESSED,
    JobState.RUNNING,
    JobState.RUN_DONE,
    JobState.POSTPROCESSED,
    JobState.JOB_FINISHED,
)

#: States a live worker moves jobs through (everything non-terminal).
ACTIVE_STATES: frozenset[JobState] = frozenset(LIFECYCLE_ORDER[:-1])

#: States that mean "a worker was mid-lifecycle here" — what crash
#: recovery rolls back to ``CREATED``.  ``CREATED`` itself is pending
#: (nothing to roll back) and ``FAILED`` keeps its requeue accounting.
IN_FLIGHT_STATES: frozenset[JobState] = frozenset(LIFECYCLE_ORDER[1:-1])

#: States with no outgoing edges for a job with exhausted requeues.
TERMINAL_STATES: frozenset[JobState] = frozenset({JobState.JOB_FINISHED})

#: The full legal-transition relation (source -> allowed destinations).
LEGAL_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    **{
        src: frozenset({dst, JobState.FAILED})
        for src, dst in zip(LIFECYCLE_ORDER[:-1], LIFECYCLE_ORDER[1:])
    },
    JobState.JOB_FINISHED: frozenset(),
    JobState.FAILED: frozenset({JobState.CREATED}),  # the requeue edge
}

#: Crash-recovery-only rollbacks (see the module docstring).
RECOVERY_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    src: frozenset({JobState.CREATED}) for src in IN_FLIGHT_STATES
}


class IllegalTransition(ValueError):
    """A job was asked to move along an edge the lifecycle forbids."""

    def __init__(self, src: JobState, dst: JobState, job_id: str = "") -> None:
        subject = f"job {job_id!r}" if job_id else "job"
        super().__init__(
            f"illegal transition for {subject}: {src} -> {dst} "
            f"(legal from {src}: "
            f"{sorted(s.value for s in LEGAL_TRANSITIONS[src]) or 'none — terminal'})"
        )
        self.src = src
        self.dst = dst
        self.job_id = job_id


def validate_transition(
    src: JobState, dst: JobState, job_id: str = "", recovery: bool = False
) -> None:
    """Raise :class:`IllegalTransition` unless ``src -> dst`` is legal.

    ``recovery=True`` additionally admits the in-flight -> ``CREATED``
    rollbacks the store's crash recovery performs; nothing else.
    """
    if dst in LEGAL_TRANSITIONS[src]:
        return
    if recovery and dst in RECOVERY_TRANSITIONS.get(src, frozenset()):
        return
    raise IllegalTransition(src, dst, job_id=job_id)
