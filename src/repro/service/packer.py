"""Balsam ``boxpack``-style job packer: many small jobs, few big boxes.

The paper's off-line leg wants *thousands* of small center/subhalo jobs
flowing through the listener, but Titan's queue policy "only allows two
jobs that use less than 125 nodes to run simultaneously"
(:class:`repro.machines.machine.QueuePolicy`).  Balsam's answer — the
one this module reproduces — is to bin-pack the small jobs into a
handful of large batch allocations, each a **node-width × wall-time
rectangle**, so the facility sees a few big well-behaved jobs while the
service runs the real campaign inside them.

The algorithm is deterministic first-fit-decreasing **shelf packing**
(Balsam's ``boxpack``): jobs sorted by descending wall estimate (ties
broken by descending width, then id) are laid side by side on shelves
of total width ≤ the allocation's node count; a shelf's height is its
tallest job's wall estimate; shelves stack until the allocation's wall
limit is reached, then a new allocation opens.  Same inputs → same
packing, always (``check_determinism``-tested).

Wall estimates come from the calibrated cost model
(:mod:`repro.machines.cost`): :func:`estimate_center_job` converts a
job's halo population into projected seconds on the target machine,
exactly the way the Table 3/4 projections are priced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..machines.cost import PAPER_CALIBRATION, CostModel
from ..machines.machine import MachineSpec
from ..obs import get_recorder
from .store import JobRecord

__all__ = ["JobPacker", "PackedAllocation", "estimate_center_job"]


@dataclass
class PackedAllocation:
    """One batch allocation: a node-width × wall-time rectangle of jobs."""

    name: str
    n_nodes: int
    wall_seconds: float
    job_ids: list[str] = field(default_factory=list)
    #: packed job-seconds·nodes over the rectangle's area
    utilization: float = 0.0

    @property
    def n_jobs(self) -> int:
        return len(self.job_ids)


@dataclass(frozen=True)
class _Shelf:
    height: float
    used_nodes: int
    job_ids: tuple[str, ...]


class JobPacker:
    """Deterministic shelf packer for campaign jobs.

    Parameters
    ----------
    max_nodes:
        Width of one allocation (nodes requested from the facility).
        Must be ≥ 125 on Titan to clear the small-job policy — the
        whole point of packing.
    max_wall:
        Height of one allocation (the batch wall limit, seconds).
    """

    def __init__(self, max_nodes: int, max_wall: float) -> None:
        if max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        if max_wall <= 0:
            raise ValueError("max_wall must be positive")
        self.max_nodes = int(max_nodes)
        self.max_wall = float(max_wall)

    def pack(self, jobs: Sequence[JobRecord]) -> list[PackedAllocation]:
        """Pack ``jobs`` into allocations; every job lands exactly once.

        Raises :class:`ValueError` for a job wider than ``max_nodes`` or
        taller than ``max_wall`` — such a job can never fit and silently
        dropping it would misreport the campaign as covered.
        """
        for job in jobs:
            if job.n_nodes > self.max_nodes:
                raise ValueError(
                    f"job {job.id!r} wants {job.n_nodes} nodes; allocations "
                    f"are {self.max_nodes} wide"
                )
            if job.wall_estimate > self.max_wall:
                raise ValueError(
                    f"job {job.id!r} estimates {job.wall_estimate:.1f}s; "
                    f"allocations are capped at {self.max_wall:.1f}s"
                )
        # first-fit decreasing: tallest first, widest breaks ties, id
        # breaks the rest — a total order, so the packing is a pure
        # function of the job set
        ordered = sorted(
            jobs, key=lambda j: (-j.wall_estimate, -j.n_nodes, j.id)
        )
        shelves = self._build_shelves(ordered)
        allocations = self._stack_shelves(shelves)
        self.utilization(allocations, jobs)
        rec = get_recorder()
        rec.counter("service_pack_runs_total").inc()
        rec.gauge("service_pack_allocations").set(len(allocations))
        if allocations:
            rec.gauge("service_pack_utilization_min").set(
                min(a.utilization for a in allocations)
            )
        rec.event(
            "service.packed",
            jobs=len(jobs),
            allocations=len(allocations),
            max_nodes=self.max_nodes,
            max_wall=self.max_wall,
        )
        return allocations

    def _build_shelves(self, ordered: Sequence[JobRecord]) -> list[_Shelf]:
        shelves: list[tuple[float, int, list[str]]] = []  # (height, used, ids)
        for job in ordered:
            placed = False
            for i, (height, used, ids) in enumerate(shelves):
                if used + job.n_nodes <= self.max_nodes:
                    # heights only shrink along the FFD order, so the
                    # shelf's height (its first, tallest job) is unchanged
                    shelves[i] = (height, used + job.n_nodes, [*ids, job.id])
                    placed = True
                    break
            if not placed:
                shelves.append((job.wall_estimate, job.n_nodes, [job.id]))
        return [_Shelf(h, u, tuple(ids)) for h, u, ids in shelves]

    def _stack_shelves(self, shelves: Sequence[_Shelf]) -> list[PackedAllocation]:
        allocations: list[PackedAllocation] = []
        current: list[_Shelf] = []
        height = 0.0

        def close() -> None:
            nonlocal current, height
            if not current:
                return
            ids = [jid for shelf in current for jid in shelf.job_ids]
            alloc = PackedAllocation(
                name=f"pack-{len(allocations):03d}",
                n_nodes=self.max_nodes,
                wall_seconds=height,
                job_ids=ids,
            )
            allocations.append(alloc)
            current = []
            height = 0.0

        for shelf in shelves:
            if height + shelf.height > self.max_wall and current:
                close()
            current.append(shelf)
            height += shelf.height
        close()
        return allocations

    def utilization(
        self, allocations: Sequence[PackedAllocation], jobs: Sequence[JobRecord]
    ) -> list[PackedAllocation]:
        """Fill in each allocation's packed-area utilization, in place."""
        by_id = {j.id: j for j in jobs}
        for alloc in allocations:
            area = alloc.n_nodes * alloc.wall_seconds
            packed = sum(
                by_id[jid].n_nodes * by_id[jid].wall_estimate for jid in alloc.job_ids
            )
            alloc.utilization = packed / area if area > 0 else 0.0
        return list(allocations)


def estimate_center_job(
    halo_counts: Sequence[int] | np.ndarray,
    machine: MachineSpec,
    cost_model: CostModel = PAPER_CALIBRATION,
    backend: str = "gpu",
    overhead_seconds: float = 30.0,
) -> float:
    """Projected wall seconds for one off-line center job.

    ``halo_counts`` are the particle counts of the halos the job will
    center; the brute-force MBP cost is ``n·(n−1)`` pair interactions
    per halo, priced at the machine's calibrated pair rate (the Table 2
    column).  ``overhead_seconds`` covers stage-in + startup — the floor
    that makes packing thousands of tiny jobs worthwhile at all.
    """
    counts = np.asarray(halo_counts, dtype=float)
    pairs = float(np.sum(counts * (counts - 1.0)))
    seconds = float(cost_model.center_seconds(pairs, machine, backend=backend))
    return seconds + float(overhead_seconds)
