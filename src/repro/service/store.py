"""The durable campaign job store: crash-safe JSONL + atomic manifest.

The store is the service's source of truth — Balsam's first design rule
("a campaign is worth nothing if it dies with the submitting process")
applied with the :mod:`repro.obs.journal` idioms this repo already
trusts:

* **Atomic manifest** (``manifest.json``): the store's identity —
  format tag ``repro-service/1``, creation wall time, seed, code
  version — written via temp file + ``os.replace`` so a reader never
  sees a torn manifest.
* **Append-only job journal** (``jobs.jsonl``): every campaign
  submission, job creation, and state transition is one
  newline-terminated JSON record handed to the OS in a single buffered
  ``write`` under a lock (concurrent writers never interleave within a
  line), flushed *and fsynced* per record.  The current job table is
  *derived state*: opening a store replays the journal from the top.
* **Single-writer exclusion** (``lock``): a writable store holds an
  advisory ``flock`` on a lockfile for its whole lifetime, so a second
  writer (two ``python -m repro.service work`` invocations, say) fails
  fast with :class:`StoreLockedError` instead of interleaving replayed
  job tables and corrupting the journal.  The lock is released by
  :meth:`CampaignStore.close` and by the OS when the holder dies —
  a crashed worker never wedges its store.  Read-only opens
  (``CampaignStore.open(..., readonly=True)``) take no lock and never
  write, so ``status``/``ls``/``pack`` stay available while a worker
  drains.
* **Torn-tail recovery**: a crash can tear the final line at a buffer
  boundary.  Opening for append truncates back to the last complete
  line (:func:`repro.obs.journal.recover_tail`) — exactly one record
  (the one being written at the instant of death, whether the process
  was killed or the machine lost power: everything earlier was
  fsynced) can be lost, and it is always the *latest* transition, so
  replay re-derives a consistent earlier lifecycle position for that
  job.
* **Crash recovery** (:meth:`CampaignStore.recover`): jobs a dead
  worker stranded mid-lifecycle are rolled back to ``CREATED`` with an
  explicit ``recovery=True`` transition record, so a resumed worker
  sees the same pending set an uninterrupted run would have processed
  — and the journal says the rollback happened.  Jobs the crash caught
  *between* the ``FAILED`` append and its resolution are resolved the
  way the dead worker would have: requeued while the budget lasts,
  dead-lettered otherwise.
* **Crash-atomic submission**: ``campaign.create`` journals the
  campaign's job count, so a crash mid-submission is detected on the
  next writable open and the partial campaign is discarded (journaled
  as ``campaign.discard``) — resubmitting it then succeeds.

Record kinds (unknown kinds are preserved on replay, the same
forward-compatibility contract as the run journal):

===================  ========================================================
``campaign.create``   one submitted campaign (name, seed, job count)
``job.create``        one job's immutable spec (id, kind, params, estimates)
``job.transition``    one state-machine edge (from, to, attempts, error, ...)
``job.dead_letter``   terminal failure after the requeue budget ran out
``campaign.discard``  a partial submission (crash mid-submit) swept on open
===================  ========================================================

Time never comes from a wall-clock call inside this module (rule
RPR003 covers ``repro.service``): the store takes an injectable
``clock`` and defaults to :data:`time.time` *by reference*, so
deterministic tests can freeze it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, TextIO

try:  # advisory single-writer locking (POSIX; absent e.g. on Windows)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..faults import DEAD_LETTER_LIMIT, DeadLetterBox
from ..obs import get_recorder
from ..obs.journal import config_hash, detect_code_version, recover_tail
from .states import IN_FLIGHT_STATES, JobState, validate_transition

__all__ = [
    "JOBS_FILE",
    "LOCK_FILE",
    "MANIFEST_FILE",
    "STORE_FORMAT",
    "CampaignInfo",
    "CampaignStore",
    "IllegalDeadLetter",
    "JobRecord",
    "JobSpec",
    "StoreCorruptError",
    "StoreLockedError",
    "StoreManifest",
]

MANIFEST_FILE = "manifest.json"
JOBS_FILE = "jobs.jsonl"
LOCK_FILE = "lock"

#: Store format tag written into every manifest.
STORE_FORMAT = "repro-service/1"


class StoreCorruptError(RuntimeError):
    """The job journal encodes something replay cannot honour.

    Torn final lines are *not* corruption (they are recovered); this is
    raised for interior damage — an unparseable line in the middle of
    the journal, a transition for an unknown job, or an edge the state
    machine forbids.
    """


class StoreLockedError(RuntimeError):
    """Another process holds this store open for writing.

    A campaign store admits exactly one writer at a time (advisory
    ``flock`` on the store's ``lock`` file); concurrent writers would
    each replay their own job table and append conflicting transitions,
    corrupting the journal.  Open read-only (``readonly=True``, what the
    ``status``/``ls``/``pack`` CLI commands do) to inspect a store that
    a worker is draining.
    """


@dataclass(frozen=True)
class JobSpec:
    """What a submitter asks for: one job's immutable description.

    ``kind`` names a registered payload (see
    :mod:`repro.service.worker`); ``params`` are its JSON-serializable
    arguments.  ``n_nodes`` and ``wall_estimate`` feed the packer
    (node-width × wall-time rectangles); estimate walls with the
    calibrated cost model (:func:`repro.service.packer.estimate_center_job`).
    """

    name: str
    kind: str = "noop"
    params: dict[str, Any] = field(default_factory=dict)
    n_nodes: int = 1
    wall_estimate: float = 1.0
    max_requeues: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.wall_estimate <= 0:
            raise ValueError("wall_estimate must be positive")
        if self.max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")


@dataclass
class JobRecord:
    """One job's current (replayed) state plus its immutable spec."""

    id: str
    campaign: str
    name: str
    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    n_nodes: int = 1
    wall_estimate: float = 1.0
    max_requeues: int = 1
    state: JobState = JobState.CREATED
    attempts: int = 0
    error: str | None = None
    result: dict[str, Any] | None = None
    dead_lettered: bool = False
    #: full lifecycle trail: ``(state, wall_seconds)`` per transition,
    #: starting with the ``CREATED`` stamp.
    history: list[tuple[str, float]] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.state is JobState.JOB_FINISHED

    @property
    def pending(self) -> bool:
        return self.state is JobState.CREATED

    def spec_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "campaign": self.campaign,
            "name": self.name,
            "kind": self.kind,
            "params": self.params,
            "n_nodes": self.n_nodes,
            "wall_estimate": self.wall_estimate,
            "max_requeues": self.max_requeues,
        }


@dataclass
class CampaignInfo:
    """One submitted campaign (a named group of jobs).

    ``expected_jobs`` is the job count journaled in ``campaign.create``;
    replay compares it against the ``job.create`` records that actually
    follow to detect submissions a crash cut short (``None`` for
    journals written before the count existed).
    """

    name: str
    seed: int = 0
    created: float = 0.0
    job_ids: list[str] = field(default_factory=list)
    expected_jobs: int | None = None


@dataclass
class StoreManifest:
    """The store's identity card (``manifest.json``)."""

    created: float = 0.0
    seed: int = 0
    code_version: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": STORE_FORMAT,
            "created": self.created,
            "seed": self.seed,
            "code_version": self.code_version,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "StoreManifest":
        fmt = d.get("format")
        if fmt != STORE_FORMAT:
            raise StoreCorruptError(
                f"not a campaign store manifest: format={fmt!r} (expected {STORE_FORMAT!r})"
            )
        return cls(
            created=float(d.get("created", 0.0)),
            seed=int(d.get("seed", 0)),
            code_version=str(d.get("code_version", "")),
            extra=dict(d.get("extra") or {}),
        )

    def save(self, path: str | os.PathLike[str]) -> str:
        """Atomic write: temp file in the same directory + ``os.replace``."""
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "StoreManifest":
        with open(os.fspath(path), encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class CampaignStore:
    """Durable, multi-tenant job store under one directory.

    Use :meth:`create` for a fresh store and :meth:`open` to resume an
    existing one (torn tail recovered first, journal replayed into the
    in-memory job table).  A writable store holds the single-writer
    ``flock`` for its lifetime (:class:`StoreLockedError` on
    contention); ``readonly=True`` opens take no lock and reject writes.
    Mutations are thread-safe: validate + journal append + in-memory
    apply happen under one reentrant lock, so two threads can never
    both depart the same replayed state.  Each record gets the next
    ``seq``.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        manifest: StoreManifest,
        clock: Callable[[], float] | None = None,
        readonly: bool = False,
        _seq0: int = 0,
    ) -> None:
        self.directory = os.fspath(directory)
        self.manifest = manifest
        self.readonly = bool(readonly)
        # injectable clock (RPR003: no wall-clock calls in service code);
        # time.time is referenced, never called here
        self._clock = time.time if clock is None else clock
        # reentrant: transition() holds it across validate+append+apply
        # while _append takes it again for the journal write
        self._lock = threading.RLock()
        self._seq = int(_seq0)
        self.jobs: dict[str, JobRecord] = {}
        self.campaigns: dict[str, CampaignInfo] = {}
        self.dead_letter = DeadLetterBox("service", limit=DEAD_LETTER_LIMIT)
        #: torn-tail bytes dropped when this store was last opened
        self.recovered_bytes = 0
        self._closed = False
        self._fh: TextIO | None = None
        self._lock_fh: TextIO | None = None
        if not self.readonly:
            self._lock_fh = _acquire_writer_lock(self.directory)
            self._fh = open(self.jobs_path, "a", encoding="utf-8")

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | os.PathLike[str],
        seed: int = 0,
        extra: dict[str, Any] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> "CampaignStore":
        """Create a fresh store directory (fails if one already exists)."""
        directory = Path(os.fspath(root))
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / MANIFEST_FILE).exists():
            raise FileExistsError(f"{directory}: already a campaign store")
        wall = (time.time if clock is None else clock)()
        manifest = StoreManifest(
            created=wall,
            seed=int(seed),
            code_version=detect_code_version(),
            extra=dict(extra or {}),
        )
        manifest.save(directory / MANIFEST_FILE)
        store = cls(directory, manifest, clock=clock)
        get_recorder().event("service.store_created", store=str(directory), seed=seed)
        return store

    @classmethod
    def open(
        cls,
        root: str | os.PathLike[str],
        clock: Callable[[], float] | None = None,
        readonly: bool = False,
    ) -> "CampaignStore":
        """Open an existing store: recover the tail, replay the journal.

        ``readonly=True`` skips the single-writer lock and never touches
        the journal file — torn tails are ignored (not truncated) and
        partial submissions are dropped from the view without being
        journaled as discarded — so a store a live worker is draining
        stays inspectable.
        """
        directory = Path(os.fspath(root))
        manifest_path = directory / MANIFEST_FILE
        if not manifest_path.is_file():
            raise FileNotFoundError(f"{directory}: no campaign store here ({MANIFEST_FILE})")
        manifest = StoreManifest.load(manifest_path)
        jobs_path = directory / JOBS_FILE
        # readonly opens must not write: leave a torn tail in place
        # (_read_records drops an unterminated final line on its own)
        dropped = 0 if readonly else recover_tail(jobs_path)
        records = _read_records(jobs_path) if jobs_path.is_file() else []
        store = cls(directory, manifest, clock=clock, readonly=readonly, _seq0=len(records))
        store.recovered_bytes = dropped
        for rec in records:
            store._apply(rec)
        store._discard_partial_campaigns()
        if dropped:
            get_recorder().event(
                "service.store_tail_recovered",
                level="warning",
                store=str(directory),
                dropped_bytes=dropped,
            )
        return store

    # -- paths -----------------------------------------------------------------

    @property
    def jobs_path(self) -> str:
        return os.path.join(self.directory, JOBS_FILE)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_FILE)

    @property
    def products_dir(self) -> str:
        """Where workers drop per-job products (created on demand)."""
        return os.path.join(self.directory, "products")

    @property
    def lock_path(self) -> str:
        """The single-writer advisory lockfile."""
        return os.path.join(self.directory, LOCK_FILE)

    # -- journal ---------------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> int:
        """Append one record (adds ``seq`` + ``wall``); returns its seq.

        Same atomic-line-framing contract as
        :meth:`repro.obs.journal.RunJournal.write`: serialize outside
        the file write, one ``write`` call per record, flush *and fsync*
        per record (campaign stores see orders of magnitude fewer
        records than run journals, so durability — surviving OS/power
        crashes, not just process kills — wins over batching here).
        """
        with self._lock:
            if self._fh is None:
                raise RuntimeError("store is read-only")
            if self._fh.closed:
                raise RuntimeError("store is closed")
            seq = self._seq
            line = json.dumps({"seq": seq, "wall": self._clock(), **record})
            self._fh.write(line + "\n")
            self._fh.flush()
            try:
                os.fsync(self._fh.fileno())
            except OSError:  # pragma: no cover - fs without fsync
                pass
            self._seq += 1
            return seq

    def _apply(self, record: dict[str, Any]) -> None:
        """Replay one journal record into the in-memory tables."""
        kind = record.get("kind")
        wall = float(record.get("wall", 0.0))
        if kind == "campaign.create":
            name = str(record["campaign"])
            expected = record.get("jobs")
            self.campaigns[name] = CampaignInfo(
                name=name,
                seed=int(record.get("seed", 0)),
                created=wall,
                expected_jobs=None if expected is None else int(expected),
            )
        elif kind == "job.create":
            spec = dict(record.get("job") or {})
            job = JobRecord(
                id=str(spec["id"]),
                campaign=str(spec["campaign"]),
                name=str(spec.get("name", spec["id"])),
                kind=str(spec.get("kind", "noop")),
                params=dict(spec.get("params") or {}),
                n_nodes=int(spec.get("n_nodes", 1)),
                wall_estimate=float(spec.get("wall_estimate", 1.0)),
                max_requeues=int(spec.get("max_requeues", 1)),
                history=[(JobState.CREATED.value, wall)],
            )
            if job.id in self.jobs:
                raise StoreCorruptError(f"duplicate job.create for {job.id!r}")
            if job.campaign not in self.campaigns:
                raise StoreCorruptError(
                    f"job.create for {job.id!r} references unknown campaign "
                    f"{job.campaign!r}"
                )
            self.jobs[job.id] = job
            self.campaigns[job.campaign].job_ids.append(job.id)
        elif kind == "job.transition":
            job = self._job(record)
            dst = JobState(str(record["to"]))
            src = JobState(str(record["from"]))
            if src is not job.state:
                raise StoreCorruptError(
                    f"transition for {job.id!r} departs from {src} but the "
                    f"replayed state is {job.state}"
                )
            validate_transition(
                src, dst, job_id=job.id, recovery=bool(record.get("recovery"))
            )
            job.state = dst
            job.attempts = int(record.get("attempts", job.attempts))
            job.error = record.get("error")
            if record.get("result") is not None:
                job.result = dict(record["result"])
            job.history.append((dst.value, wall))
        elif kind == "job.dead_letter":
            job = self._job(record)
            job.dead_lettered = True
            self.dead_letter.add(
                job.id,
                str(record.get("reason", "requeue budget exhausted")),
                attempts=int(record.get("attempts", job.attempts)),
            )
        elif kind == "campaign.discard":
            name = str(record["campaign"])
            info = self.campaigns.pop(name, None)
            if info is None:
                raise StoreCorruptError(
                    f"campaign.discard for unknown campaign {name!r}"
                )
            for job_id in info.job_ids:
                self.jobs.pop(job_id, None)
        # unknown kinds: preserved silently (forward compatibility)

    def _discard_partial_campaigns(self) -> list[str]:
        """Sweep campaigns a crash cut short mid-submission.

        A campaign whose replayed ``job.create`` count disagrees with
        the count journaled in ``campaign.create`` was torn by a crash
        between those records.  Writable opens journal a
        ``campaign.discard`` so the sweep is durable and the name can be
        resubmitted; readonly opens only hide it from the view (it may
        be a live writer mid-submission, not a crash).
        """
        partial = [
            info.name
            for info in self.campaigns.values()
            if info.expected_jobs is not None
            and len(info.job_ids) != info.expected_jobs
        ]
        for name in partial:
            record = {
                "kind": "campaign.discard",
                "campaign": name,
                "reason": "partial submission",
            }
            if not self.readonly:
                self._append(record)
            self._apply(record)
        if partial and not self.readonly:
            get_recorder().event(
                "service.partial_campaigns_discarded",
                level="warning",
                store=self.directory,
                campaigns=partial,
            )
        return partial

    def _job(self, record: dict[str, Any]) -> JobRecord:
        job_id = str(record.get("job"))
        job = self.jobs.get(job_id)
        if job is None:
            raise StoreCorruptError(f"record references unknown job {job_id!r}")
        return job

    # -- submission ------------------------------------------------------------

    def submit_campaign(
        self, name: str, specs: list[JobSpec], seed: int = 0
    ) -> list[JobRecord]:
        """Submit a named campaign of jobs; returns the created records.

        Job ids are deterministic (``<campaign>.<index>``), so a seeded
        submission replays identically — the property the packer- and
        resume-determinism tests lean on.  The ``campaign.create``
        record journals the job count up front, so a crash mid-loop is
        detected (and the partial campaign discarded) on the next open.
        """
        if not name or "/" in name or name != name.strip():
            raise ValueError(f"invalid campaign name {name!r}")
        if not specs:
            raise ValueError("a campaign needs at least one job")
        rec = get_recorder()
        with self._lock:
            if name in self.campaigns:
                raise ValueError(f"campaign {name!r} already submitted")
            self._append(
                {
                    "kind": "campaign.create",
                    "campaign": name,
                    "seed": int(seed),
                    "jobs": len(specs),
                }
            )
            wall = self._clock()
            self.campaigns[name] = CampaignInfo(
                name=name, seed=int(seed), created=wall, expected_jobs=len(specs)
            )
            created: list[JobRecord] = []
            for i, spec in enumerate(specs):
                job = JobRecord(
                    id=f"{name}.{i:05d}",
                    campaign=name,
                    name=spec.name,
                    kind=spec.kind,
                    params=dict(spec.params),
                    n_nodes=spec.n_nodes,
                    wall_estimate=spec.wall_estimate,
                    max_requeues=spec.max_requeues,
                    history=[(JobState.CREATED.value, wall)],
                )
                self._append({"kind": "job.create", "job": job.spec_dict()})
                self.jobs[job.id] = job
                self.campaigns[name].job_ids.append(job.id)
                created.append(job)
        rec.counter("service_campaigns_total").inc()
        rec.counter("service_jobs_submitted_total").inc(len(created))
        rec.event(
            "service.campaign_submitted", campaign=name, jobs=len(created), seed=seed
        )
        return created

    # -- transitions -----------------------------------------------------------

    def transition(
        self,
        job_id: str,
        dst: JobState,
        error: str | None = None,
        result: dict[str, Any] | None = None,
        recovery: bool = False,
    ) -> JobRecord:
        """Move one job along a legal edge, journaled before applied.

        Raises :class:`~repro.service.states.IllegalTransition` for a
        forbidden edge *before* anything touches disk, so an illegal
        call can never corrupt the store.  Validate, append, and apply
        happen under the store lock, so concurrent threads can never
        both journal a departure from the same state.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            src = job.state
            validate_transition(src, dst, job_id=job_id, recovery=recovery)
            # `attempts` counts lifecycle *failures* (FAILED entries), so a
            # stage-in failure consumes requeue budget exactly like a
            # payload failure — no free infinite FAILED→CREATED loops
            attempts = job.attempts + 1 if dst is JobState.FAILED else job.attempts
            record: dict[str, Any] = {
                "kind": "job.transition",
                "job": job_id,
                "from": src.value,
                "to": dst.value,
                "attempts": attempts,
            }
            if error is not None:
                record["error"] = error
            if result is not None:
                record["result"] = result
            if recovery:
                record["recovery"] = True
            self._append(record)
            job.state = dst
            job.attempts = attempts
            job.error = error
            if result is not None:
                job.result = dict(result)
            job.history.append((dst.value, self._clock()))
        rec = get_recorder()
        rec.counter("service_transitions_total").inc()
        rec.event(
            "service.transition",
            job=job_id,
            src=src.value,
            dst=dst.value,
            recovery=recovery,
        )
        return job

    def mark_dead_letter(self, job_id: str, reason: str) -> JobRecord:
        """Record a terminal failure (requeue budget exhausted).

        The job stays ``FAILED``; the journal gains a ``job.dead_letter``
        record and the store's :class:`~repro.faults.DeadLetterBox`
        (source ``"service"``) gains an entry — the same bounded sink
        the scheduler and exec engine use.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.state is not JobState.FAILED:
                raise IllegalDeadLetter(job_id, job.state)
            self._append(
                {
                    "kind": "job.dead_letter",
                    "job": job_id,
                    "reason": reason,
                    "attempts": job.attempts,
                }
            )
            job.dead_lettered = True
            self.dead_letter.add(job_id, reason, attempts=job.attempts)
        return job

    # -- recovery --------------------------------------------------------------

    def recover(self) -> list[str]:
        """Resolve every job a dead worker left in a non-pending state.

        A worker that died mid-lifecycle leaves jobs in an in-flight
        state (``STAGED_IN`` .. ``POSTPROCESSED``).  Each is rolled back
        to ``CREATED`` with an explicit ``recovery=True`` transition, so
        the resumed pending set is exactly what an uninterrupted worker
        would still have had to process.

        A crash can also land *between* a ``FAILED`` append and its
        resolution (requeue or dead-letter) — leaving the job ``FAILED``
        but not dead-lettered, a state no live worker ever abandons.
        Recovery finishes what the dead worker started: requeue
        (``FAILED -> CREATED``) while ``attempts`` is within the
        ``max_requeues`` budget, dead-letter otherwise — so the store
        can always reach :attr:`done`.

        Returns the job ids re-queued to ``CREATED`` (rollbacks and
        requeues both; dead-lettered jobs are terminal, not pending).
        """
        rolled: list[str] = []
        dead: list[str] = []
        for job in list(self.jobs.values()):
            if job.state in IN_FLIGHT_STATES:
                self.transition(job.id, JobState.CREATED, recovery=True)
                rolled.append(job.id)
            elif job.state is JobState.FAILED and not job.dead_lettered:
                if job.attempts <= job.max_requeues:
                    self.transition(
                        job.id, JobState.CREATED, error=job.error, recovery=True
                    )
                    rolled.append(job.id)
                else:
                    reason = (
                        f"requeue budget exhausted after {job.attempts} attempts"
                        " (resolved during recovery)"
                    )
                    if job.error:
                        reason += f": {job.error}"
                    self.mark_dead_letter(job.id, reason)
                    dead.append(job.id)
        if rolled or dead:
            rec = get_recorder()
            rec.counter("service_recovered_total").inc(len(rolled) + len(dead))
            rec.event(
                "service.recovered",
                level="warning",
                jobs=len(rolled),
                ids=rolled,
                dead_lettered=dead,
            )
        return rolled

    # -- queries ---------------------------------------------------------------

    def pending(self, campaign: str | None = None) -> list[JobRecord]:
        """``CREATED`` jobs in submission order (the worker's pull queue)."""
        return [
            j
            for j in self.jobs.values()
            if j.pending and (campaign is None or j.campaign == campaign)
        ]

    def iter_jobs(
        self, campaign: str | None = None, state: JobState | None = None
    ) -> Iterator[JobRecord]:
        for job in self.jobs.values():
            if campaign is not None and job.campaign != campaign:
                continue
            if state is not None and job.state is not state:
                continue
            yield job

    def status(self) -> dict[str, dict[str, int]]:
        """Per-campaign state counts (the ``repro.service status`` view)."""
        out: dict[str, dict[str, int]] = {}
        for name, info in self.campaigns.items():
            counts: dict[str, int] = {}
            for job_id in info.job_ids:
                state = self.jobs[job_id].state.value
                counts[state] = counts.get(state, 0) + 1
            out[name] = counts
        return out

    @property
    def done(self) -> bool:
        """Every job terminal: finished, or failed with no requeue budget."""
        return all(
            j.finished or (j.state is JobState.FAILED and j.dead_lettered)
            for j in self.jobs.values()
        )

    def fingerprint(self) -> str:
        """Deterministic digest of every job's spec + result (no walls).

        Two stores whose campaigns produced identical outcomes — e.g. an
        uninterrupted run versus a killed-and-resumed one — have equal
        fingerprints; anything timing-dependent is projected away.
        """
        view = [
            {
                "spec": j.spec_dict(),
                "state": j.state.value,
                "result": j.result,
                "dead_lettered": j.dead_lettered,
            }
            for j in sorted(self.jobs.values(), key=lambda j: j.id)
        ]
        return config_hash({"jobs": view})

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Flush + close the journal and release the single-writer lock."""
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.flush()
                try:
                    os.fsync(self._fh.fileno())
                except OSError:  # pragma: no cover - fs without fsync
                    pass
                self._fh.close()
            if self._lock_fh is not None and not self._lock_fh.closed:
                # closing the fd drops the flock; no unlink (another
                # writer may be racing to take the lock on the same path)
                self._lock_fh.close()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed if self._fh is None else self._fh.closed

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


class IllegalDeadLetter(ValueError):
    """Dead-lettering is only legal from ``FAILED``."""

    def __init__(self, job_id: str, state: JobState) -> None:
        super().__init__(
            f"job {job_id!r} cannot be dead-lettered from {state} (only from FAILED)"
        )
        self.job_id = job_id
        self.state = state


def _acquire_writer_lock(directory: str) -> TextIO:
    """Take the store's advisory single-writer lock (non-blocking).

    The lock lives as long as the returned file handle: released by
    :meth:`CampaignStore.close`, or by the OS when the holding process
    dies — which is why a hard-killed worker never wedges its store.
    """
    path = os.path.join(directory, LOCK_FILE)
    fh = open(path, "a", encoding="utf-8")
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        return fh
    try:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        fh.close()
        raise StoreLockedError(
            f"{directory}: another process holds this campaign store open "
            "for writing (one writer at a time; open readonly=True to "
            "inspect, or wait for the other writer to finish)"
        ) from None
    return fh


def _read_records(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Parse a (tail-recovered) job journal; interior damage raises."""
    records: list[dict[str, Any]] = []
    with open(os.fspath(path), "rb") as fh:
        data = fh.read()
    lines = data.split(b"\n")
    if lines and lines[-1].strip():
        # an unterminated tail: recover_tail truncated it for writable
        # opens; readonly opens leave the file alone and drop it here
        lines = lines[:-1]
    for i, raw in enumerate(lines):
        if not raw.strip():
            continue
        try:
            records.append(json.loads(raw.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreCorruptError(
                f"{os.fspath(path)}: unparseable interior record at line {i + 1}: {exc}"
            ) from exc
    return records
