"""The campaign-service facade: store + packer + scheduler, one object.

:class:`CampaignService` is the submit/poll boundary ISSUE 10 promotes
the one-shot listener/scheduler into: campaigns are submitted as named,
durable resources; the packer turns their thousands of small jobs into
a few large batch allocations; and :meth:`schedule` hands those
allocations to the existing discrete-event
:class:`~repro.machines.scheduler.Scheduler` — each packed allocation
becomes one big, policy-friendly batch job whose *payload* drains the
allocation's real jobs through a pull-based
:class:`~repro.service.worker.ServiceWorker`.

That closes the loop the ROADMAP's Balsam item describes: on Titan the
queue policy tolerates two small jobs; a packed campaign submits (say)
three 128-node rectangles instead of nine hundred 1-node jobs, and the
facility never knows the difference.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from ..faults import RetryPolicy
from ..machines.machine import MachineSpec
from ..machines.scheduler import Job, Scheduler
from ..obs import get_recorder
from .packer import JobPacker, PackedAllocation
from .store import CampaignStore, JobSpec
from .worker import ServiceWorker

__all__ = ["CampaignService"]


class CampaignService:
    """Submit / pack / schedule / drain campaigns over one durable store."""

    def __init__(
        self,
        store: CampaignStore,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.store = store
        self.retry = retry

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | os.PathLike[str],
        seed: int = 0,
        retry: RetryPolicy | None = None,
    ) -> "CampaignService":
        return cls(CampaignStore.create(root, seed=seed), retry=retry)

    @classmethod
    def open(
        cls, root: str | os.PathLike[str], retry: RetryPolicy | None = None
    ) -> "CampaignService":
        return cls(CampaignStore.open(root), retry=retry)

    # -- the submit/poll boundary ----------------------------------------------

    def submit(self, campaign: str, specs: list[JobSpec], seed: int = 0) -> list[str]:
        """Submit a campaign; returns the durable job ids."""
        return [j.id for j in self.store.submit_campaign(campaign, specs, seed=seed)]

    def status(self) -> dict[str, dict[str, int]]:
        """Per-campaign state counts (poll side of the boundary)."""
        return self.store.status()

    def resume(self) -> list[str]:
        """Crash recovery: roll stranded in-flight jobs back to pending."""
        return self.store.recover()

    # -- packing + machine integration -----------------------------------------

    def pack(
        self, max_nodes: int, max_wall: float, campaign: str | None = None
    ) -> list[PackedAllocation]:
        """Bin-pack pending jobs into node-width × wall-time rectangles."""
        packer = JobPacker(max_nodes=max_nodes, max_wall=max_wall)
        return packer.pack(self.store.pending(campaign=campaign))

    def schedule(
        self,
        machine: MachineSpec,
        allocations: list[PackedAllocation],
        worker_factory: Callable[[CampaignStore], ServiceWorker] | None = None,
    ) -> float:
        """Run packed allocations through the discrete-event scheduler.

        One :class:`~repro.machines.scheduler.Job` per allocation, sized
        by the packer's rectangle; the job's payload drains exactly that
        allocation's campaign jobs through a pull worker when the
        simulated facility grants the nodes.  Returns the makespan.
        """
        scheduler = Scheduler(machine)
        for alloc in allocations:
            worker = (
                worker_factory(self.store)
                if worker_factory is not None
                else ServiceWorker(self.store, retry=self.retry)
            )
            scheduler.submit(
                Job(
                    name=alloc.name,
                    n_nodes=alloc.n_nodes,
                    duration=alloc.wall_seconds,
                    payload=_allocation_payload(worker, alloc),
                )
            )
        makespan = scheduler.run()
        get_recorder().event(
            "service.scheduled",
            machine=machine.name,
            allocations=len(allocations),
            makespan=makespan,
        )
        return makespan

    def drain(self, max_jobs: int | None = None, campaign: str | None = None) -> int:
        """Run a local pull worker over the pending set (no scheduler)."""
        worker = ServiceWorker(self.store, retry=self.retry)
        return worker.drain(max_jobs=max_jobs, campaign=campaign)


def _allocation_payload(
    worker: ServiceWorker, alloc: PackedAllocation
) -> Callable[[], Any]:
    """The batch job body: drain one allocation's jobs via the worker."""

    def payload() -> int:
        return worker.drain(job_ids=list(alloc.job_ids))

    return payload
