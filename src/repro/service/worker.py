"""The pull-based service worker: Balsam's launcher loop for this repo.

A worker never receives work — it *pulls* from the
:class:`~repro.service.store.CampaignStore` (the Balsam launcher
pattern: launchers on the allocation drain the database, the database
never pushes).  Each claimed job is driven through the full lifecycle,
journaling every edge::

    CREATED -> STAGED_IN -> PREPROCESSED -> RUNNING -> RUN_DONE
            -> POSTPROCESSED -> JOB_FINISHED

* **stage-in** resolves the job's inputs (e.g. checks a Level 2 path
  exists);
* **preprocess** materializes the payload arguments;
* **run** executes the registered payload under the shared
  :class:`~repro.faults.RetryPolicy`, with ``"service.job"`` fault
  injection per attempt — the same deterministic failure drills every
  other hop gets;
* **postprocess** writes the job's product atomically into the store's
  ``products/`` directory (temp file + ``os.replace``), so a crash
  never leaves a torn product.

A job whose payload exhausts its retries transitions to ``FAILED`` and
is requeued (``FAILED -> CREATED``) while its ``max_requeues`` budget
lasts; after that it is dead-lettered through the store and the
campaign continues without it — graceful degradation, exactly like the
combined driver's missing-snapshot handling.

**Crash drill hook**: ``crash_after_transitions=N`` hard-kills the
process (``os._exit``) after the worker has driven N state transitions
— deliberately *mid-lifecycle*, between a journal append and the job's
completion.  The resume drill in ``docs/service.md``,
``examples/campaign_service.py``, and the service test suite use it to
prove that a killed campaign resumes to a bit-identical outcome.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable

import numpy as np

from ..faults import RetryPolicy, maybe_inject, resolve_retry
from ..obs import get_recorder
from .states import JobState
from .store import CampaignStore, JobRecord

__all__ = [
    "PAYLOADS",
    "PayloadFn",
    "ServiceWorker",
    "payload_digest",
    "register_payload",
    "run_payload",
]

#: A payload implementation: JSON-able params in, JSON-able result out.
PayloadFn = Callable[[dict[str, Any]], dict[str, Any]]

#: Registered payload kinds: name -> callable(params) -> JSON-able dict.
PAYLOADS: dict[str, PayloadFn] = {}


def register_payload(kind: str) -> Callable[[PayloadFn], PayloadFn]:
    """Register a payload implementation under ``kind`` (decorator)."""

    def wrap(fn: PayloadFn) -> PayloadFn:
        PAYLOADS[kind] = fn
        return fn

    return wrap


def run_payload(kind: str, params: dict[str, Any]) -> dict[str, Any]:
    """Execute one registered payload (KeyError for unknown kinds)."""
    try:
        fn = PAYLOADS[kind]
    except KeyError:
        raise KeyError(
            f"unknown payload kind {kind!r} (registered: {sorted(PAYLOADS)})"
        ) from None
    return fn(dict(params))


def payload_digest(payload: dict[str, Any]) -> str:
    """Stable SHA-256 over a JSON-able result (sorted keys, short hex)."""
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# -- built-in payloads ---------------------------------------------------------


@register_payload("noop")
def _noop_payload(params: dict[str, Any]) -> dict[str, Any]:
    """Identity payload: echoes its params (queueing/packing drills)."""
    return {"ok": True, "echo": params}


@register_payload("fail")
def _fail_payload(params: dict[str, Any]) -> dict[str, Any]:
    """Always-failing payload (dead-letter drills)."""
    raise RuntimeError(str(params.get("reason", "synthetic payload failure")))


@register_payload("synthetic_centers")
def _synthetic_centers_payload(params: dict[str, Any]) -> dict[str, Any]:
    """A real (small) center-finding job over a seeded particle set.

    Generates clustered blobs + background from ``seed`` alone, runs
    periodic grid FOF and MBP center finding, and returns a
    deterministic summary — the unit of work the campaign-level
    bit-identity drills compare across kill/resume boundaries.

    Params: ``seed`` (required), ``n_blobs`` (default 4), ``n_per_blob``
    (default 160), ``n_background`` (default 600), ``box`` (default
    20.0), ``linking_length`` (default 0.4), ``min_count`` (default 20).
    """
    from ..analysis.centers import halo_centers
    from ..analysis.fof import fof_grid

    seed = int(params["seed"])
    n_blobs = int(params.get("n_blobs", 4))
    n_per_blob = int(params.get("n_per_blob", 160))
    n_background = int(params.get("n_background", 600))
    box = float(params.get("box", 20.0))
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15 * box, 0.85 * box, (n_blobs, 3))
    blobs = [rng.normal(c, 0.25, (n_per_blob, 3)) for c in centers]
    background = rng.uniform(0.0, box, (n_background, 3))
    pos = np.mod(np.concatenate([*blobs, background]), box)
    tags = np.arange(len(pos), dtype=np.int64)

    fof = fof_grid(
        pos,
        float(params.get("linking_length", 0.4)),
        tags=tags,
        min_count=int(params.get("min_count", 20)),
        box=box,
    )
    res = halo_centers(pos, tags, fof.labels)
    result = {
        "particles": int(len(pos)),
        "halos": int(res.halo_tags.size),
        "largest_halo": int(fof.halo_counts.max()) if fof.halo_counts.size else 0,
        "center_sum": [round(float(v), 9) for v in np.sort(res.centers, axis=0).sum(axis=0)]
        if res.centers.size
        else [0.0, 0.0, 0.0],
    }
    result["digest"] = payload_digest(result)
    return result


@register_payload("offline_centers")
def _offline_centers_payload(params: dict[str, Any]) -> dict[str, Any]:
    """One off-line center job over an existing Level 2 file.

    Params: ``path`` (required), plus the usual
    :func:`repro.core.driver.offline_center_job` knobs (``workers``,
    ``block``).
    """
    from ..core.driver import offline_center_job

    catalog = offline_center_job(
        params["path"],
        block=params.get("block"),
        workers=params.get("workers"),
    )
    result = {
        "path": str(params["path"]),
        "halos": int(len(catalog)),
        "total_count": int(catalog["count"].sum()) if len(catalog) else 0,
    }
    result["digest"] = payload_digest(result)
    return result


# -- the worker loop -----------------------------------------------------------


class ServiceWorker:
    """Drains a campaign store through the job lifecycle.

    Parameters
    ----------
    store:
        The (open) campaign store to pull from.
    retry:
        Per-attempt policy for the ``run`` phase (``None`` → the
        tree-wide default of 3 attempts).  Distinct from the *requeue*
        budget: retries happen inside one ``RUNNING`` visit; requeues
        are journaled ``FAILED -> CREATED`` round trips.
    crash_after_transitions:
        Drill hook — hard-kill the process (``os._exit(2)``) after this
        many worker-driven transitions.  ``None`` (default) disables.
    """

    #: exit code of a drill-induced hard kill (distinct from error exits)
    CRASH_EXIT_CODE = 2

    def __init__(
        self,
        store: CampaignStore,
        retry: RetryPolicy | None = None,
        crash_after_transitions: int | None = None,
    ) -> None:
        self.store = store
        self.retry = resolve_retry(retry)
        self.crash_after_transitions = crash_after_transitions
        self._transitions = 0

    # -- lifecycle plumbing ----------------------------------------------------

    def _step(self, job: JobRecord, dst: JobState, **kwargs: Any) -> None:
        """One journaled transition, honouring the crash drill hook."""
        self.store.transition(job.id, dst, **kwargs)
        self._transitions += 1
        if (
            self.crash_after_transitions is not None
            and self._transitions >= self.crash_after_transitions
        ):
            # the drill: die hard, mid-lifecycle, without flushing
            # anything beyond what the store already journaled
            get_recorder().event(
                "service.drill_crash",
                level="warning",
                job=job.id,
                transitions=self._transitions,
            )
            os._exit(self.CRASH_EXIT_CODE)

    def _run_attempt(self, job: JobRecord) -> dict[str, Any]:
        """One payload attempt (the unit the retry policy repeats)."""
        maybe_inject("service.job", key=job.id)
        return run_payload(job.kind, job.params)

    # -- one job ---------------------------------------------------------------

    def run_job(self, job: JobRecord) -> bool:
        """Drive one pending job to ``JOB_FINISHED`` (or ``FAILED``).

        Returns ``True`` when the job finished.  On failure the job is
        requeued while its budget lasts, then dead-lettered; either way
        the worker survives — one bad job never stops the campaign.
        """
        rec = get_recorder()
        with rec.span("service.job", job=job.id, kind=job.kind, campaign=job.campaign):
            try:
                with rec.span("service.stage_in", job=job.id):
                    self._stage_in(job)
                    self._step(job, JobState.STAGED_IN)
                with rec.span("service.preprocess", job=job.id):
                    self._step(job, JobState.PREPROCESSED)
                self._step(job, JobState.RUNNING)
                with rec.span("service.run", job=job.id, kind=job.kind):
                    outcome = self.retry.run(
                        self._run_attempt, job, site="service.job", key=job.id
                    )
                result = dict(outcome.value or {})
                self._step(job, JobState.RUN_DONE, result=result)
                with rec.span("service.postprocess", job=job.id):
                    self._write_product(job, result)
                    self._step(job, JobState.POSTPROCESSED)
                self._step(job, JobState.JOB_FINISHED)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                rec.counter("service_jobs_failed_total").inc()
                rec.event(
                    "service.job_failed", level="error", job=job.id, error=error
                )
                self._resolve_failure(job, error)
                return False
        rec.counter("service_jobs_finished_total").inc()
        return True

    def _stage_in(self, job: JobRecord) -> None:
        """Validate the job's inputs before any state moves."""
        path = job.params.get("path")
        if path is not None and not os.path.exists(os.fspath(path)):
            raise FileNotFoundError(f"job {job.id!r}: input {path!r} does not exist")
        if job.kind not in PAYLOADS:
            raise KeyError(f"job {job.id!r}: unknown payload kind {job.kind!r}")

    def _write_product(self, job: JobRecord, result: dict[str, Any]) -> str:
        """Atomic product drop: ``products/<job id>.json``."""
        os.makedirs(self.store.products_dir, exist_ok=True)
        path = os.path.join(self.store.products_dir, f"{job.id}.json")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"job": job.id, "result": result}, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def _resolve_failure(self, job: JobRecord, error: str) -> None:
        """FAILED, then requeue-or-dead-letter; the worker survives."""
        rec = get_recorder()
        self._step(job, JobState.FAILED, error=error)
        if job.attempts <= job.max_requeues:
            self._step(job, JobState.CREATED, error=error)
            rec.counter("service_requeues_total").inc()
            rec.event(
                "service.job_requeued", level="warning", job=job.id, attempt=job.attempts
            )
        else:
            self.store.mark_dead_letter(
                job.id, f"requeue budget exhausted after {job.attempts} attempts: {error}"
            )

    # -- the pull loop ---------------------------------------------------------

    def drain(
        self,
        max_jobs: int | None = None,
        job_ids: list[str] | None = None,
        campaign: str | None = None,
    ) -> int:
        """Pull pending jobs (in submission order) until none remain.

        ``job_ids`` restricts the pull to one packed allocation's jobs;
        ``campaign`` to one tenant.  Requeued jobs re-enter the pending
        set and are picked up by the same drain.  Returns the number of
        jobs that reached ``JOB_FINISHED``.
        """
        rec = get_recorder()
        allowed = None if job_ids is None else set(job_ids)
        finished = 0
        processed = 0
        with rec.span("service.drain", campaign=campaign):
            while True:
                batch = [
                    j
                    for j in self.store.pending(campaign=campaign)
                    if allowed is None or j.id in allowed
                ]
                if not batch:
                    break
                for job in batch:
                    if max_jobs is not None and processed >= max_jobs:
                        return finished
                    processed += 1
                    if self.run_job(job):
                        finished += 1
        return finished
