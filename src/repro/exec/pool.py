"""Persistent worker-process pool for the execution engine.

Historically :class:`~repro.exec.engine.ExecutionEngine` forked a fresh
set of worker processes for every batch.  At mini-HACC scale the fork +
interpreter warm-up + module import cost is a fixed tax per analysis
step — paid dozens of times in a campaign that runs the off-line center
job once per snapshot.  :class:`WorkerPool` keeps the workers alive
between batches instead:

* one OS process per worker, started once, fed through a per-worker job
  queue (job payloads are tiny: the shared-memory spec, the work items,
  and the task dict — bulk arrays still travel through
  :class:`~repro.exec.sharedmem.SharedParticleStore` segments);
* the work-stealing cursor and the abort event are created once and
  *inherited* at fork (``multiprocessing`` synchronization primitives
  cannot be shipped through queues), then reset by the dispatcher
  before each job;
* every result message carries its job id, so a straggler message from
  an aborted job can never corrupt the next one;
* per job, each worker installs a fresh fault plan and a fresh local
  telemetry recorder — exactly the state a newly forked worker would
  have, which keeps pooled runs bit-identical to the fork-per-run path;
* a worker that ships an ``error`` message survives to take the next
  job (the engine still raises
  :class:`~repro.exec.engine.WorkerError`); a worker that *dies* or
  times out marks the pool broken, and the engine tears it down and
  builds a fresh one.

The engine exposes reuse through the ``exec_pool_reuse_total`` counter;
pool processes are daemons with an ``atexit`` backstop, so an abandoned
pool can never outlive the interpreter.
"""

from __future__ import annotations

import atexit
import time
import traceback
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any

from ..faults import FaultPlan, maybe_inject, set_fault_plan
from ..obs import NullRecorder, TelemetryRecorder, set_recorder
from ..obs.context import export_snapshot
from .sharedmem import SharedParticleStore

if TYPE_CHECKING:
    from .workqueue import WorkItem

__all__ = ["WorkerPool"]


def _pool_worker_main(
    worker_id: int,
    job_q: Any,  # multiprocessing Queue from the pool's ctx
    result_q: Any,  # multiprocessing Queue from the pool's ctx
    cursor: Any,  # multiprocessing.Value("l") — inherited, reset per job
    abort: Any,  # multiprocessing Event — inherited, cleared per job
) -> None:
    """Worker loop: take one job at a time until the ``None`` sentinel."""
    # lazy import: the runner registry lives in engine.py, which imports
    # this module
    from .engine import _TASK_RUNNERS

    while True:
        job = job_q.get()
        if job is None:
            break
        (
            job_id,
            spec,
            items,
            seed_ids,
            pool_ids,
            task,
            plan_dict,
            catch_item_errors,
            trace,
        ) = job
        # fresh per-job state, exactly as a newly forked worker would have:
        # deterministic fault-plan attempt counters and a local recorder
        # whose snapshot ships back with the "done" message
        set_fault_plan(FaultPlan.from_dict(plan_dict) if plan_dict is not None else None)
        local_rec: TelemetryRecorder | None = None
        if trace is not None:
            local_rec = TelemetryRecorder(run_id=trace.get("run"), capacity=4096)
            set_recorder(local_rec)
        else:
            set_recorder(NullRecorder())
        store = SharedParticleStore.attach(spec)
        runner = _TASK_RUNNERS[task["task"]]
        cache: dict[int, Any] = {}
        busy = 0.0
        steals = 0
        t_prev = time.perf_counter()
        try:

            def run_one(item_id: int, stolen: bool) -> None:
                nonlocal busy, t_prev
                item: WorkItem = items[item_id]
                t0 = time.perf_counter()
                overhead = t0 - t_prev
                try:
                    maybe_inject("exec.item", item_id)
                    payload = runner(item, store, task, cache)
                except Exception:
                    if not catch_item_errors:
                        raise
                    t1 = time.perf_counter()
                    busy += t1 - t0
                    t_prev = t1
                    result_q.put(
                        ("item_error", job_id, worker_id, item_id, traceback.format_exc())
                    )
                    return
                t1 = time.perf_counter()
                busy += t1 - t0
                t_prev = t1
                result_q.put(
                    ("ok", job_id, worker_id, item_id, payload, t0, t1, overhead, stolen)
                )

            for item_id in seed_ids:
                if abort.is_set():
                    break
                run_one(item_id, stolen=False)
            while not abort.is_set():
                with cursor.get_lock():
                    nxt = cursor.value
                    if nxt >= len(pool_ids):
                        break
                    cursor.value = nxt + 1
                steals += 1
                run_one(pool_ids[nxt], stolen=True)
            snap = export_snapshot(local_rec) if local_rec is not None else None
            result_q.put(("done", job_id, worker_id, busy, steals, snap))
        except BaseException:  # repro: noqa[RPR006] - traceback is shipped to
            # the parent over result_q, which raises WorkerError (crash
            # isolation); the worker itself survives to take the next job.
            result_q.put(("error", job_id, worker_id, traceback.format_exc()))
        finally:
            store.close()


class WorkerPool:
    """A reusable set of worker processes fed through job queues.

    One dispatcher thread drives one job at a time (``submit`` then
    drain via :meth:`get` until every participating worker reported
    ``done``/``error``).  The engine owns the lifecycle; see
    :meth:`ExecutionEngine.close <repro.exec.engine.ExecutionEngine.close>`.
    """

    def __init__(self, n_workers: int, start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.start_method = start_method
        ctx = get_context(start_method)
        self._result_q: Any = ctx.Queue()
        self._cursor: Any = ctx.Value("l", 0)
        self._abort: Any = ctx.Event()
        self._job_qs: list[Any] = [ctx.Queue() for _ in range(self.n_workers)]
        self._procs: list[Any] = []
        self._job_seq = 0
        self._broken = False
        self._closed = False
        for w in range(self.n_workers):
            p = ctx.Process(
                target=_pool_worker_main,
                args=(w, self._job_qs[w], self._result_q, self._cursor, self._abort),
                name=f"exec-worker-{w}",
                daemon=True,
            )
            self._procs.append(p)
            p.start()
        # backstop: an abandoned pool must not outlive the interpreter
        # (the processes are daemons, but a clean join avoids noise)
        atexit.register(self.close)

    # -- state ----------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Usable for another job: not broken, not closed, workers up."""
        return (
            not self._broken
            and not self._closed
            and all(p.is_alive() for p in self._procs)
        )

    def worker_alive(self, worker_id: int) -> bool:
        return bool(self._procs[worker_id].is_alive())

    def worker_exitcode(self, worker_id: int) -> int | None:
        code = self._procs[worker_id].exitcode
        return None if code is None else int(code)

    def mark_broken(self) -> None:
        """A job ended un-drainably (death/timeout): no further reuse."""
        self._broken = True

    # -- job dispatch ----------------------------------------------------------

    def submit(
        self,
        n_workers: int,
        spec: dict[str, tuple[str, tuple[int, ...], str]],
        items: "list[WorkItem]",
        seeds: list[list[int]],
        pool_ids: list[int],
        task: dict[str, Any],
        plan_dict: dict[str, Any] | None,
        catch_item_errors: bool,
        trace: dict[str, Any] | None,
    ) -> int:
        """Dispatch one job to the first ``n_workers`` workers.

        Returns the job id that every result message for this job will
        carry.  The caller must drain the job to completion (or mark the
        pool broken) before submitting the next one.
        """
        if not self.alive:
            raise RuntimeError("worker pool is not usable")
        if n_workers > self.n_workers:
            raise ValueError(f"job needs {n_workers} workers, pool has {self.n_workers}")
        job_id = self._job_seq
        self._job_seq += 1
        # reset the inherited primitives: no worker holds a job right now
        self._abort.clear()
        with self._cursor.get_lock():
            self._cursor.value = 0
        for w in range(n_workers):
            self._job_qs[w].put(
                (
                    job_id,
                    spec,
                    items,
                    seeds[w],
                    pool_ids,
                    task,
                    plan_dict,
                    catch_item_errors,
                    trace,
                )
            )
        return job_id

    def get(self, timeout: float) -> Any:
        """Next result message (raises ``queue.Empty`` on timeout)."""
        return self._result_q.get(timeout=timeout)

    def abort_job(self) -> None:
        """Ask workers to stop at the next item boundary."""
        self._abort.set()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        self._abort.set()
        for q in self._job_qs:
            try:
                q.put_nowait(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for p in self._procs:
            p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - last-resort cleanup
                p.terminate()
                p.join(timeout=2.0)
        for q in [*self._job_qs, self._result_q]:
            try:
                q.close()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
