"""Work-stealing multi-process execution engine for per-halo analysis.

This is the intra-node parallel executor under the workflow layer: the
paper schedules *where* per-halo analysis runs (in-situ vs off-line,
which cluster), and this engine decides *how* a batch of per-halo
kernels fills the cores of whatever node it landed on.

Design (see :mod:`repro.exec.workqueue` for the scheduling policy):

* particle arrays live in :class:`~repro.exec.sharedmem.SharedParticleStore`
  segments — workers attach zero-copy views, nothing bulky is pickled;
* the :class:`~repro.exec.workqueue.HaloWorkQueue` pre-sorts work items
  longest-processing-time-first using the ``n(n-1)`` cost model, splits
  giant halos into row slabs, and packs small halos into amortized
  chunks; the head items seed one worker each and idle workers steal
  the tail through an atomic cursor;
* results return through a queue as tiny tuples (indices + scalars for
  centers; pickled :class:`~repro.analysis.subhalos.SubhaloResult` for
  subhalos) and are reassembled in deterministic halo order, so output
  is **bit-identical** to the serial path for any worker count;
* a crashing worker is isolated: its traceback is shipped back, the
  remaining workers drain at the next item boundary, and the engine
  raises :class:`WorkerError` instead of hanging;
* with ``item_retries > 0`` the failure unit shrinks from worker to
  *item*: a failing item (including an injected ``"exec.item"`` fault
  from the active :class:`~repro.faults.FaultPlan`) is shipped back as
  an item error, retried inline by the parent, and — after exhausting
  its retries — *poisoned*: quarantined in the engine's bounded
  :class:`~repro.faults.DeadLetterBox` and excluded from the output,
  while every other item completes normally (see ``docs/failures.md``);
* everything is instrumented through :mod:`repro.obs`: per-worker item
  spans land in the Chrome trace on ``exec-worker-N`` tracks, the
  ``exec_load_imbalance_ratio`` gauge reports max/mean worker busy time
  (the paper's Figure 4 metric), ``exec_steals_total`` counts tail
  steals, and ``exec_dispatch_overhead_seconds`` histograms the
  per-item scheduling cost.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol

import numpy as np

from ..analysis.centers import (
    DEFAULT_SOFTENING,
    CenterStats,
    HaloCentersResult,
    _phi_rows,
    group_halo_members,
    mbp_center_astar,
    mbp_center_bruteforce,
)
from ..faults import DeadLetterBox, get_fault_plan, maybe_inject
from ..obs import NullRecorder, TelemetryRecorder, get_recorder
from ..obs.context import merge_snapshot
from .pool import WorkerPool
from .sharedmem import SharedParticleStore
from .workqueue import HaloWorkQueue, WorkItem

__all__ = [
    "ExecReport",
    "ExecutionEngine",
    "ItemRecord",
    "SubhaloBatchResult",
    "WorkerError",
    "default_workers",
    "parallel_halo_centers",
    "parallel_subhalos",
    "shutdown_pool",
]


def default_workers() -> int:
    """Default worker count: the cores this process may schedule on."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except AttributeError:  # pragma: no cover - non-Linux
        return max(os.cpu_count() or 1, 1)


class WorkerError(RuntimeError):
    """A worker process failed; carries the remote traceback."""

    def __init__(
        self, message: str, worker_id: int | None = None, remote_traceback: str = ""
    ) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.remote_traceback = remote_traceback


@dataclass
class ItemRecord:
    """Per-item execution record (feeds the Chrome-trace worker tracks)."""

    worker: int
    kind: str
    n_halos: int
    cost: int
    t0: float
    t1: float
    overhead: float  # seconds between previous item end and kernel start
    stolen: bool

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0


@dataclass
class ExecReport:
    """What one engine run did — the load-balance evidence.

    ``imbalance`` is max/mean worker busy time, the quantity behind the
    paper's Figure 4 ("the imbalance between the fastest and the
    slowest node is a factor of 15" in §4.2).
    """

    workers: int
    n_items: int
    n_halos: int
    n_split_halos: int
    wall_seconds: float
    worker_busy: list[float] = field(default_factory=list)
    steals: list[int] = field(default_factory=list)
    imbalance: float = 1.0
    total_cost: int = 0
    item_log: list[ItemRecord] = field(default_factory=list)
    halo_seconds: dict[int, float] = field(default_factory=dict)
    #: item attempts that failed (before retry resolution)
    item_failures: int = 0
    #: items that succeeded on an inline retry after a worker-side failure
    recovered_items: int = 0
    #: item ids quarantined after exhausting ``item_retries`` — their
    #: halos are excluded from the reassembled output
    poisoned: list[int] = field(default_factory=list)

    @property
    def total_steals(self) -> int:
        return int(sum(self.steals))

    @property
    def busy_fraction(self) -> float:
        """Aggregate worker utilization (busy time / workers x wall)."""
        if self.wall_seconds <= 0 or not self.worker_busy:
            return 1.0
        return sum(self.worker_busy) / (self.workers * self.wall_seconds)


# ---------------------------------------------------------------------------
# task runners (executed inside workers; registered by name so spawn-based
# contexts can resolve them after re-import)
# ---------------------------------------------------------------------------


class ParticleArrays(Protocol):
    """Structural type shared by :class:`SharedParticleStore` and the
    inline dict-of-arrays store: field name -> particle array."""

    def __getitem__(self, field: str) -> np.ndarray: ...


def _members_of(store: ParticleArrays, h: int) -> np.ndarray:
    starts = store["starts"]
    return store["members"][int(starts[h]) : int(starts[h + 1])]


def _run_centers_item(
    item: WorkItem,
    store: ParticleArrays,
    task: Mapping[str, Any],
    cache: dict[int, np.ndarray],
) -> list[tuple[Any, ...]]:
    """Center finding: whole halos or a row slab of a giant halo."""
    pos = store["pos"]
    mass = task["mass"]
    softening = task["softening"]
    method = task["method"]
    out: list[tuple[Any, ...]] = []
    if item.kind == "slab":
        h = item.halo_indices[0]
        hpos = cache.get(h)
        if hpos is None:
            cache.clear()  # keep at most one gathered giant halo resident
            hpos = pos[_members_of(store, h)]
            cache[h] = hpos
        n = len(hpos)
        phi = _phi_rows(hpos, item.row_start, item.row_end, mass, softening)
        b = int(np.argmin(phi))
        out.append(
            (
                "slab",
                h,
                item.row_start + b,
                float(phi[b]),
                item.row_end - item.row_start,
                (item.row_end - item.row_start) * (n - 1),
            )
        )
        return out
    for h in item.halo_indices:
        hpos = pos[_members_of(store, h)]
        if method == "astar":
            idx, phi, stats = mbp_center_astar(hpos, mass=mass, softening=softening)
        else:
            idx, phi, stats = mbp_center_bruteforce(
                hpos, mass=mass, softening=softening, backend=task.get("backend")
            )
        out.append(
            (
                "halo",
                h,
                idx,
                phi,
                stats.n_particles,
                stats.pair_evaluations,
                stats.exact_potentials,
            )
        )
    return out


def _run_subhalos_item(
    item: WorkItem,
    store: ParticleArrays,
    task: Mapping[str, Any],
    cache: dict[int, np.ndarray],
) -> list[tuple[Any, ...]]:
    """Subhalo decomposition of whole parent halos (never split)."""
    from ..analysis.subhalos import find_subhalos

    pos = store["pos"]
    vel = store["vel"]
    box = task.get("box")
    vel_scale = task.get("vel_scale", 1.0)
    out: list[tuple[Any, ...]] = []
    for h in item.halo_indices:
        m = _members_of(store, h)
        t0 = time.perf_counter()
        hpos = pos[m].copy()
        if box:
            # halo-local frame: unwrap periodic coordinates about the first
            # member (mirrors SubhaloFinderAlgorithm exactly)
            hpos -= box * np.round((hpos - hpos[0]) / box)
        hvel = vel[m] * vel_scale
        res = find_subhalos(
            hpos,
            hvel,
            mass=task["mass"],
            g_constant=task["g_constant"],
            k_density=task.get("k_density", 32),
            n_link=task.get("n_link", 2),
            min_size=task.get("min_size", 20),
            unbind=task.get("unbind", True),
            softening=task.get("softening", 1e-5),
        )
        out.append(("subhalo", h, res, time.perf_counter() - t0))
    return out


def _run_explode_item(
    item: WorkItem,
    store: ParticleArrays,
    task: Mapping[str, Any],
    cache: dict[int, np.ndarray],
) -> list[tuple[Any, ...]]:
    """Crash-isolation test hook: always raises inside the worker."""
    raise RuntimeError(task.get("message", "exec test worker explosion"))


_TASK_RUNNERS: dict[str, Callable[..., list[tuple[Any, ...]]]] = {
    "centers": _run_centers_item,
    "subhalos": _run_subhalos_item,
    "explode": _run_explode_item,
}


# ---------------------------------------------------------------------------
# the shared worker pool
# ---------------------------------------------------------------------------
#
# One long-lived WorkerPool (see repro.exec.pool) is shared by every
# engine in the process, so a campaign that runs the engine once per
# analysis step pays the fork + warm-up cost once, not per step.  The
# pool runs one job at a time; a second engine running concurrently on
# another thread (e.g. the pipelined in-situ chain next to an off-line
# job) gets a private ephemeral pool instead of blocking.

_SHARED_POOL: WorkerPool | None = None
_SHARED_POOL_LOCK = threading.Lock()


def _acquire_pool(
    n_workers: int, start_method: str | None
) -> tuple[WorkerPool, bool, bool]:
    """Borrow the shared pool (or build one). Returns (pool, shared, reused).

    ``shared=True`` means the caller holds ``_SHARED_POOL_LOCK`` and must
    release it through :func:`_release_pool`; ``reused=True`` means an
    existing pool's workers take this job (no forks).
    """
    global _SHARED_POOL
    if _SHARED_POOL_LOCK.acquire(blocking=False):
        pool = _SHARED_POOL
        if (
            pool is not None
            and pool.alive
            and pool.n_workers >= n_workers
            and pool.start_method == start_method
        ):
            return pool, True, True
        if pool is not None:
            pool.close()
        _SHARED_POOL = WorkerPool(n_workers, start_method)
        return _SHARED_POOL, True, False
    # the shared pool is busy on another thread: private one-job pool
    return WorkerPool(n_workers, start_method), False, False


def _release_pool(pool: WorkerPool, shared: bool, broken: bool) -> None:
    """Return a pool borrowed via :func:`_acquire_pool`."""
    global _SHARED_POOL
    if broken:
        pool.mark_broken()
    if shared:
        try:
            if broken:
                pool.close()
                if _SHARED_POOL is pool:
                    _SHARED_POOL = None
        finally:
            _SHARED_POOL_LOCK.release()
    else:
        pool.close()


def shutdown_pool() -> None:
    """Tear down the process-wide shared worker pool (safe to call anytime).

    The pool also has its own ``atexit`` backstop; call this explicitly
    to reclaim the worker processes early (tests do).
    """
    global _SHARED_POOL
    with _SHARED_POOL_LOCK:
        if _SHARED_POOL is not None:
            _SHARED_POOL.close()
            _SHARED_POOL = None


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class ExecutionEngine:
    """Multi-process work-stealing executor for per-halo batches.

    Parameters
    ----------
    workers:
        Worker process count (default: cores available to this process).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``fork`` on Linux).
    split_factor, chunk_factor, min_split_rows:
        Scheduling knobs forwarded to :meth:`HaloWorkQueue.build`.
    result_timeout:
        Hard ceiling in seconds on waiting for worker results — the
        no-hang guarantee even if a worker is killed outright.
    item_retries:
        ``0`` (default) keeps the historical contract: any failing item
        crashes its worker and the run raises :class:`WorkerError`.
        ``N > 0`` shrinks the failure unit to the *item*: a failing
        item is retried inline up to ``N`` times and then poisoned
        (quarantined in :attr:`dead_letter`, excluded from the output)
        while the rest of the batch completes.
    """

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
        split_factor: float = 2.0,
        chunk_factor: float = 16.0,
        min_split_rows: int = 256,
        result_timeout: float = 600.0,
        item_retries: int = 0,
    ) -> None:
        self.workers = int(workers) if workers else default_workers()
        self.start_method = start_method
        self.split_factor = split_factor
        self.chunk_factor = chunk_factor
        self.min_split_rows = min_split_rows
        self.result_timeout = result_timeout
        if item_retries < 0:
            raise ValueError("item_retries must be >= 0")
        self.item_retries = int(item_retries)
        #: poison quarantine: items that exhausted their retries
        self.dead_letter = DeadLetterBox("exec")

    # -- public API -----------------------------------------------------------

    def build_queue(
        self,
        counts: np.ndarray,
        cost_model: Callable[[np.ndarray], np.ndarray] | None = None,
        splittable: bool = True,
    ) -> HaloWorkQueue:
        return HaloWorkQueue.build(
            counts,
            workers=self.workers,
            cost_model=cost_model,
            splittable=splittable,
            split_factor=self.split_factor,
            chunk_factor=self.chunk_factor,
            min_split_rows=self.min_split_rows,
        )

    def run(
        self,
        arrays: Mapping[str, np.ndarray],
        work: HaloWorkQueue,
        task: dict[str, Any],
    ) -> tuple[list[tuple[int, list[tuple[Any, ...]]]], ExecReport]:
        """Execute a work queue; returns ``(item payloads, report)``.

        ``arrays`` must contain the shared inputs the task runner needs
        (always ``members``/``starts`` plus e.g. ``pos``).  Payload
        order is undefined (workers race); callers reassemble by halo
        index, which is what makes results scheduling-independent.
        """
        rec = get_recorder()
        n_workers = max(1, min(self.workers, max(len(work.items), 1)))
        n_halos = int(len(arrays["starts"]) - 1) if "starts" in arrays else 0
        with rec.span(
            "exec.run",
            task=task.get("task"),
            workers=n_workers,
            items=len(work.items),
            halos=n_halos,
        ):
            t_wall0 = time.perf_counter()
            if n_workers == 1 or len(work.items) == 0:
                payloads, report = self._run_inline(arrays, work, task)
            else:
                payloads, report = self._run_processes(arrays, work, task, n_workers)
            report.wall_seconds = time.perf_counter() - t_wall0
            report.n_halos = n_halos
            self._record_telemetry(rec, report, task)
        return payloads, report

    # -- inline (single worker, no processes) ---------------------------------

    def _run_inline(
        self, arrays: Mapping[str, np.ndarray], work: HaloWorkQueue, task: dict[str, Any]
    ) -> tuple[list[tuple[int, list[tuple[Any, ...]]]], ExecReport]:
        runner = _TASK_RUNNERS[task["task"]]
        store = _InlineStore(arrays)
        cache: dict[int, np.ndarray] = {}
        payloads: list[tuple[int, list[tuple[Any, ...]]]] = []
        log: list[ItemRecord] = []
        failed_items: list[tuple[int, str]] = []
        busy = 0.0
        order = [i for ids in work.seeds for i in ids] + list(work.pool)
        t_prev = time.perf_counter()
        for item_id in order:
            item = work.items[item_id]
            t0 = time.perf_counter()
            try:
                maybe_inject("exec.item", item_id)
                payloads.append((item_id, runner(item, store, task, cache)))
            except Exception:
                if self.item_retries == 0:
                    raise  # historical contract: inline failures propagate
                failed_items.append((item_id, traceback.format_exc()))
            t1 = time.perf_counter()
            log.append(
                ItemRecord(0, item.kind, item.n_halos, item.cost, t0, t1, t0 - t_prev, False)
            )
            busy += t1 - t0
            t_prev = t1
        recovered, poisoned = self._retry_failed_items(
            failed_items, arrays, work, task, payloads
        )
        return payloads, ExecReport(
            workers=1,
            n_items=len(work.items),
            n_halos=0,
            n_split_halos=work.n_split_halos,
            wall_seconds=0.0,
            worker_busy=[busy],
            steals=[0],
            imbalance=1.0,
            total_cost=work.total_cost,
            item_log=log,
            item_failures=len(failed_items),
            recovered_items=recovered,
            poisoned=poisoned,
        )

    # -- multi-process path ---------------------------------------------------

    def _run_processes(
        self,
        arrays: Mapping[str, np.ndarray],
        work: HaloWorkQueue,
        task: dict[str, Any],
        n_workers: int,
    ) -> tuple[list[tuple[int, list[tuple[Any, ...]]]], ExecReport]:
        rec = get_recorder()
        store = SharedParticleStore.create(**arrays)
        error: WorkerError | None = None
        payloads: list[tuple[int, list[tuple[Any, ...]]]] = []
        log: list[ItemRecord] = []
        busy = [0.0] * n_workers
        steals = [0] * n_workers
        failed_items: list[tuple[int, str]] = []  # (item_id, traceback)
        active_plan = get_fault_plan()
        plan_dict = active_plan.to_dict() if active_plan is not None else None
        # trace context for the workers: run id + the open exec.run span
        # (run() holds it on this thread), so worker telemetry comes back
        # causally parented under the driver's trace
        ctx_trace = rec.trace_context()
        trace_dict = ctx_trace.to_dict() if ctx_trace is not None else None
        snaps: dict[int, dict[str, Any] | None] = {}
        wpool, shared, reused = _acquire_pool(n_workers, self.start_method)
        if reused:
            rec.counter(
                "exec_pool_reuse_total",
                help="engine runs served by an already-warm worker pool",
            ).inc()
        broken = False
        try:
            # re-balance seeds onto the actual worker count
            seeds: list[list[int]] = [[] for _ in range(n_workers)]
            flat_seeds = [i for ids in work.seeds for i in ids]
            pool = list(work.pool)
            for rank, item_id in enumerate(flat_seeds):
                if rank < n_workers:
                    seeds[rank].append(item_id)
                else:
                    pool.insert(rank - n_workers, item_id)
            job_id = wpool.submit(
                n_workers,
                store.spec,
                work.items,
                seeds,
                pool,
                task,
                plan_dict,
                self.item_retries > 0,
                trace_dict,
            )

            finished: set[int] = set()
            deadline = time.monotonic() + self.result_timeout
            while len(finished) < n_workers:
                try:
                    msg = wpool.get(timeout=0.2)
                except queue_module.Empty:
                    dead = [
                        w
                        for w in range(n_workers)
                        if w not in finished and not wpool.worker_alive(w)
                    ]
                    if dead:
                        wpool.abort_job()
                        broken = True
                        if error is None:
                            error = WorkerError(
                                f"worker {dead[0]} died without reporting "
                                f"(exitcode {wpool.worker_exitcode(dead[0])})",
                                worker_id=dead[0],
                            )
                        finished.update(dead)
                    if time.monotonic() > deadline:
                        wpool.abort_job()
                        broken = True
                        error = error or WorkerError(
                            f"timed out after {self.result_timeout:.0f}s waiting "
                            f"for workers {sorted(set(range(n_workers)) - finished)}"
                        )
                        break
                    continue
                if msg[1] != job_id:
                    # straggler from an earlier aborted job on a reused
                    # pool: job-id tagging makes it harmless
                    continue
                if msg[0] == "ok":
                    _, _, w, item_id, payload, t0, t1, overhead, stolen = msg
                    payloads.append((item_id, payload))
                    item = work.items[item_id]
                    log.append(
                        ItemRecord(w, item.kind, item.n_halos, item.cost, t0, t1, overhead, stolen)
                    )
                elif msg[0] == "done":
                    _, _, w, wbusy, wsteals, snap = msg
                    busy[w] = wbusy
                    steals[w] = wsteals
                    snaps[w] = snap
                    finished.add(w)
                elif msg[0] == "item_error":
                    _, _, w, item_id, tb = msg
                    failed_items.append((item_id, tb))
                elif msg[0] == "error":
                    # the worker shipped the traceback and survives for
                    # the next job; the batch still fails loudly
                    _, _, w, tb = msg
                    wpool.abort_job()
                    finished.add(w)
                    if error is None:
                        last = tb.strip().splitlines()[-1] if tb.strip() else "unknown"
                        error = WorkerError(
                            f"worker {w} failed: {last}", worker_id=w, remote_traceback=tb
                        )
        finally:
            _release_pool(wpool, shared, broken)
            store.unlink()
        if error is not None:
            raise error

        # fold worker-process telemetry into the parent recorder in sorted
        # worker order (deterministic journal content for identical runs);
        # worker root spans/events hang under the open exec.run span
        parent_rec = get_recorder()
        if trace_dict is not None and isinstance(parent_rec, TelemetryRecorder):
            for w in sorted(snaps):
                merge_snapshot(
                    parent_rec,
                    snaps[w],
                    parent_span_id=trace_dict.get("span_id"),
                    thread=f"exec-worker-{w}",
                )

        item_failures = len(failed_items)
        recovered, poisoned = self._retry_failed_items(
            failed_items, arrays, work, task, payloads
        )

        nonzero = [b for b in busy if b > 0]
        mean_busy = float(np.mean(busy)) if busy else 0.0
        imbalance = (max(busy) / mean_busy) if nonzero and mean_busy > 0 else 1.0
        return payloads, ExecReport(
            workers=n_workers,
            n_items=len(work.items),
            n_halos=0,
            n_split_halos=work.n_split_halos,
            wall_seconds=0.0,
            worker_busy=busy,
            steals=steals,
            imbalance=imbalance,
            total_cost=work.total_cost,
            item_log=log,
            item_failures=item_failures,
            recovered_items=recovered,
            poisoned=poisoned,
        )

    def _retry_failed_items(
        self,
        failed_items: list[tuple[int, str]],
        arrays: Mapping[str, np.ndarray],
        work: HaloWorkQueue,
        task: dict[str, Any],
        payloads: list[tuple[int, list[tuple[Any, ...]]]],
    ) -> tuple[int, list[int]]:
        """Retry worker-failed items inline; poison the unrecoverable.

        Returns ``(recovered_count, poisoned_item_ids)``.  Each retry
        attempt re-runs the ``"exec.item"`` injection site against the
        *parent's* fault plan, so a ``fail_first`` schedule that killed
        the worker attempt is absorbed here deterministically.
        """
        if not failed_items:
            return 0, []
        rec = get_recorder()
        runner = _TASK_RUNNERS[task["task"]]
        store = _InlineStore(arrays)
        recovered = 0
        poisoned: list[int] = []
        for item_id, tb in sorted(failed_items):
            item = work.items[item_id]
            rec.counter("exec_item_failures_total").inc()
            last_tb = tb
            ok = False
            for _attempt in range(self.item_retries):
                rec.counter("exec_item_retries_total").inc()
                try:
                    with rec.span("exec.item_retry", item=item_id):
                        maybe_inject("exec.item", item_id)
                        payload = runner(item, store, task, {})
                except Exception as exc:
                    last_tb = traceback.format_exc()
                    rec.event(
                        "exec.item_retry_failed",
                        level="warning",
                        item=item_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    payloads.append((item_id, payload))
                    recovered += 1
                    ok = True
                    break
            if not ok:
                poisoned.append(item_id)
                last = last_tb.strip().splitlines()[-1] if last_tb.strip() else "unknown"
                self.dead_letter.add(
                    item_id,
                    last,
                    attempts=1 + self.item_retries,
                    kind=item.kind,
                    n_halos=item.n_halos,
                )
                rec.counter("exec_poisoned_items_total").inc()
        return recovered, poisoned

    # -- telemetry ------------------------------------------------------------

    def _record_telemetry(
        self,
        rec: NullRecorder | TelemetryRecorder,
        report: ExecReport,
        task: dict[str, Any],
    ) -> None:
        rec.gauge(
            "exec_load_imbalance_ratio",
            help="max/mean worker busy seconds for the last engine run (Figure 4 metric)",
        ).set(report.imbalance)
        rec.gauge("exec_workers").set(report.workers)
        rec.counter("exec_runs_total").inc()
        rec.counter("exec_items_total").inc(report.n_items)
        rec.counter("exec_halos_total").inc(report.n_halos)
        rec.counter("exec_steals_total").inc(report.total_steals)
        hist = rec.histogram(
            "exec_dispatch_overhead_seconds",
            help="gap between a worker finishing one item and starting the next",
        )
        record_span = getattr(rec, "record_span", None)
        # parent the per-item spans under the still-open exec.run span so
        # worker tracks link causally back to the driver in the trace
        ctx = rec.trace_context()
        parent_id = ctx.span_id if ctx is not None else None
        for it in report.item_log:
            hist.observe(max(it.overhead, 0.0))
            if record_span is not None and getattr(rec, "enabled", False):
                record_span(
                    "exec.item",
                    it.t0,
                    it.t1,
                    thread=f"exec-worker-{it.worker}",
                    parent_id=parent_id,
                    task=task.get("task"),
                    kind=it.kind,
                    halos=it.n_halos,
                    cost=it.cost,
                    stolen=it.stolen,
                )
        if report.poisoned:
            rec.event(
                "exec.items_poisoned",
                level="error",
                task=task.get("task"),
                items=list(report.poisoned),
                failures=report.item_failures,
                recovered=report.recovered_items,
            )
        rec.event(
            "exec.run_done",
            task=task.get("task"),
            workers=report.workers,
            items=report.n_items,
            halos=report.n_halos,
            split_halos=report.n_split_halos,
            steals=report.total_steals,
            imbalance=round(report.imbalance, 4),
            busy_fraction=round(report.busy_fraction, 4),
            item_failures=report.item_failures,
            poisoned=len(report.poisoned),
        )


class _InlineStore:
    """Dict-of-arrays stand-in for :class:`SharedParticleStore` (inline path)."""

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        self._arrays = arrays

    def __getitem__(self, field: str) -> np.ndarray:
        return np.asarray(self._arrays[field])


# ---------------------------------------------------------------------------
# batch drivers
# ---------------------------------------------------------------------------


def parallel_halo_centers(
    pos: np.ndarray,
    tags: np.ndarray,
    labels: np.ndarray,
    mass: float = 1.0,
    softening: float = DEFAULT_SOFTENING,
    method: str = "bruteforce",
    backend: str | None = None,
    select_tags: np.ndarray | None = None,
    workers: int | None = None,
    engine: ExecutionEngine | None = None,
) -> HaloCentersResult:
    """Batch MBP center finding on the multi-process engine.

    Drop-in parallel fast path for
    :func:`repro.analysis.centers.halo_centers`: same arguments, same
    :class:`HaloCentersResult`, **bit-identical** centers / MBP tags /
    potentials / pair counts for any worker count.  Brute-force batches
    additionally split giant halos into row slabs so a single dominant
    halo no longer pins the makespan to one core.
    """
    from ..analysis.centers import halo_centers

    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    tags = np.asarray(tags)
    labels = np.asarray(labels)
    if engine is None:
        engine = ExecutionEngine(workers=workers)
    elif workers is not None:
        engine.workers = int(workers)
    if engine.workers <= 1:
        return halo_centers(
            pos, tags, labels, mass=mass, softening=softening, method=method,
            backend=backend, select_tags=select_tags, workers=None,
        )

    halo_tags, groups = group_halo_members(labels, select_tags=select_tags)
    n_halos = len(halo_tags)
    if n_halos == 0:
        return HaloCentersResult(
            halo_tags=halo_tags,
            centers=np.empty((0, 3)),
            mbp_tags=np.empty(0, dtype=tags.dtype),
            potentials=np.empty(0),
            stats=CenterStats(),
            per_halo_pairs=np.empty(0, np.int64),
        )

    counts = np.asarray([len(g) for g in groups], dtype=np.int64)
    members = np.concatenate(groups).astype(np.int64)
    starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    work = engine.build_queue(counts, splittable=(method == "bruteforce"))

    from ..dataparallel import get_backend

    kernel_backend = "vector"
    if backend is not None:
        resolved = get_backend(backend)
        if resolved.name != "process":
            kernel_backend = resolved.name
    task = {
        "task": "centers",
        "method": method,
        "mass": mass,
        "softening": softening,
        "backend": kernel_backend,
    }
    payloads, report = engine.run(
        {"pos": pos, "members": members, "starts": starts}, work, task
    )

    centers = np.empty((n_halos, 3))
    mbp_tags = np.empty(n_halos, dtype=tags.dtype)
    potentials = np.empty(n_halos)
    per_halo_pairs = np.zeros(n_halos, dtype=np.int64)
    n_particles = np.zeros(n_halos, dtype=np.int64)
    exact = np.zeros(n_halos, dtype=np.int64)
    best: dict[int, tuple[float, int]] = {}  # slab reduction: h -> (phi, row)

    for _, entries in payloads:
        for entry in entries:
            if entry[0] == "halo":
                _, h, idx, phi, nparts, pairs, nexact = entry
                best[h] = (phi, idx)
                per_halo_pairs[h] = pairs
                n_particles[h] = nparts
                exact[h] = nexact
            else:  # slab partial: reduce exactly like np.argmin (first min wins)
                _, h, row, phi, rows, pairs = entry
                per_halo_pairs[h] += pairs
                n_particles[h] = counts[h]
                exact[h] += rows
                cur = best.get(h)
                if cur is None or (phi, row) < cur:
                    best[h] = (phi, row)

    total = CenterStats(
        n_particles=int(n_particles.sum()),
        pair_evaluations=int(per_halo_pairs.sum()),
        exact_potentials=int(exact.sum()),
    )
    done = [h for h in range(n_halos) if h in best]
    for h in done:
        phi, idx = best[h]
        gidx = groups[h][idx]
        centers[h] = pos[gidx]
        mbp_tags[h] = tags[gidx]
        potentials[h] = phi
    if len(done) < n_halos:
        # poisoned items (item_retries quarantine) drop their halos from
        # the catalog; everything that completed is returned unchanged
        keep = np.asarray(done, dtype=np.int64)
        halo_tags = halo_tags[keep]
        centers = centers[keep]
        mbp_tags = mbp_tags[keep]
        potentials = potentials[keep]
        per_halo_pairs = per_halo_pairs[keep]
    return HaloCentersResult(
        halo_tags=halo_tags,
        centers=centers,
        mbp_tags=mbp_tags,
        potentials=potentials,
        stats=total,
        per_halo_pairs=per_halo_pairs,
        exec_report=report,
    )


@dataclass
class SubhaloBatchResult:
    """Batch subhalo output: per-parent results + the engine report."""

    by_tag: dict[int, Any]
    halo_seconds: dict[int, float] = field(default_factory=dict)
    report: ExecReport | None = None


def _subhalo_cost(counts: np.ndarray) -> np.ndarray:
    """Scheduling cost model for the tree-based subhalo finder.

    The finder is super-linear but not all-pairs (k-d tree builds +
    k-NN + iterative unbinding of candidates): ``n log2 n`` matches the
    machine cost model in :mod:`repro.machines.cost`.
    """
    counts = np.asarray(counts, dtype=np.float64)
    return np.maximum(counts * np.log2(np.maximum(counts, 2.0)), 1.0).astype(np.int64)


def parallel_subhalos(
    pos: np.ndarray,
    vel: np.ndarray,
    halos: Mapping[int, np.ndarray],
    mass: float = 1.0,
    g_constant: float = 1.0,
    k_density: int = 32,
    n_link: int = 2,
    min_size: int = 20,
    unbind: bool = True,
    softening: float = 1e-5,
    box: float | None = None,
    vel_scale: float = 1.0,
    workers: int | None = None,
    engine: ExecutionEngine | None = None,
) -> SubhaloBatchResult:
    """Batch :func:`~repro.analysis.subhalos.find_subhalos` on the engine.

    ``halos`` maps parent halo tag -> member particle *indices* into
    ``pos``/``vel``.  ``box`` enables the periodic halo-local unwrap and
    ``vel_scale`` the proper-velocity conversion, mirroring
    :class:`~repro.insitu.algorithms.SubhaloFinderAlgorithm`.  Results
    are identical to the serial loop for any worker count.
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    vel = np.atleast_2d(np.asarray(vel, dtype=float))
    if engine is None:
        engine = ExecutionEngine(workers=workers)
    elif workers is not None:
        engine.workers = int(workers)

    tag_list = list(halos.keys())
    groups = [np.asarray(halos[t], dtype=np.int64) for t in tag_list]
    if not groups:
        return SubhaloBatchResult(by_tag={})
    counts = np.asarray([len(g) for g in groups], dtype=np.int64)
    members = np.concatenate(groups)
    starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    work = engine.build_queue(counts, cost_model=_subhalo_cost, splittable=False)
    task = {
        "task": "subhalos",
        "mass": mass,
        "g_constant": g_constant,
        "k_density": k_density,
        "n_link": n_link,
        "min_size": min_size,
        "unbind": unbind,
        "softening": softening,
        "box": box,
        "vel_scale": vel_scale,
    }
    payloads, report = engine.run(
        {"pos": pos, "vel": vel, "members": members, "starts": starts}, work, task
    )
    by_tag: dict[int, Any] = {}
    halo_seconds: dict[int, float] = {}
    for _, entries in payloads:
        for _, h, res, seconds in entries:
            by_tag[tag_list[h]] = res
            halo_seconds[tag_list[h]] = seconds
    report.halo_seconds = halo_seconds
    return SubhaloBatchResult(by_tag=by_tag, halo_seconds=halo_seconds, report=report)
