"""Cost-model-guided work decomposition for per-halo analysis.

The paper's load-imbalance villain (§3.3.2, Figure 4) is the n(n-1)
cost skew of per-halo MBP center finding: one 10M-particle halo costs
10^4 times a 100k one, so *placement* — not raw FLOPs — decides
wall-clock.  :class:`HaloWorkQueue` turns a halo catalog into a
schedule that attacks the skew from three sides:

1. **Splitting** — halos whose modeled cost exceeds a per-worker quantum
   are cut into row *slabs* (each slab computes the potentials of a row
   range against all members), so even a single dominant halo spreads
   across workers.  Only cost models that are row-separable support
   this (brute-force MBP is; the A* search and the subhalo tree walk
   are not).
2. **LPT ordering** — remaining work items are sorted
   longest-processing-time-first, the classic 4/3-competitive greedy
   for makespan.
3. **Chunking** — small halos are packed into amortized chunks so the
   per-item dispatch overhead (queue round-trip, result pickling) is
   paid once per chunk instead of once per 40-particle halo.

The largest items seed one worker each (static LPT assignment); the
rest form a shared tail pool that idle workers *steal* from.  The queue
itself is a plain in-process structure — the engine shares only the
item list and an atomic pool cursor with its workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = ["WorkItem", "HaloWorkQueue"]


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: a chunk of whole halos or a slab of one.

    ``kind`` is ``"halos"`` (``halo_indices`` are indices into the batch
    halo list, each processed whole) or ``"slab"`` (rows
    ``row_start:row_end`` of the single halo ``halo_indices[0]``).
    ``cost`` is the modeled pair-interaction count used for scheduling.
    """

    kind: str
    halo_indices: tuple[int, ...]
    cost: int
    row_start: int = 0
    row_end: int = 0

    @property
    def n_halos(self) -> int:
        return len(self.halo_indices)


@dataclass
class HaloWorkQueue:
    """LPT-ordered work items with static seeds and a steal pool.

    ``items`` is the full item list; ``seeds[w]`` are the item ids
    worker ``w`` starts with; ``pool`` is the shared LPT-ordered tail
    that idle workers steal from.
    """

    items: list[WorkItem]
    seeds: list[list[int]]
    pool: list[int]
    total_cost: int = 0
    n_split_halos: int = 0
    split_threshold: int = 0
    chunk_target: int = 0
    modeled_makespan: float = field(default=0.0)

    @classmethod
    def build(
        cls,
        counts: Sequence[int] | np.ndarray,
        workers: int,
        cost_model: Callable[[np.ndarray], np.ndarray] | None = None,
        splittable: bool = True,
        split_factor: float = 2.0,
        chunk_factor: float = 16.0,
        min_split_rows: int = 256,
    ) -> "HaloWorkQueue":
        """Decompose a batch of per-halo tasks into scheduled work items.

        Parameters
        ----------
        counts:
            Particle count of each halo in the batch (index = halo id).
        workers:
            Worker processes the schedule targets.
        cost_model:
            Maps counts to modeled costs.  Defaults to the paper's MBP
            pair model ``n(n-1)`` (:func:`repro.analysis.centers.center_finding_cost`).
        splittable:
            Whether a single halo's work may be split into row slabs
            (True for brute-force centers, False for A* / subhalos).
        split_factor:
            Halos costing more than ``total / (workers * split_factor)``
            are split; larger values split more aggressively.
        chunk_factor:
            Small halos are packed into chunks of roughly
            ``total / (workers * chunk_factor)`` cost each.
        min_split_rows:
            Never emit slabs thinner than this many rows (guards the
            slab kernel's vectorization efficiency).
        """
        if cost_model is None:
            from ..analysis.centers import center_finding_cost

            cost_model = center_finding_cost
        counts = np.asarray(counts, dtype=np.int64)
        n_halos = len(counts)
        workers = max(int(workers), 1)
        costs = np.maximum(cost_model(counts).astype(np.int64), 1)
        total = int(costs.sum())

        split_threshold = max(int(total / (workers * split_factor)), 1) if n_halos else 1
        chunk_target = max(int(total / (workers * chunk_factor)), 1) if n_halos else 1

        items: list[WorkItem] = []
        n_split = 0
        small: list[int] = []  # halo ids below the chunk target, cost-desc

        order = np.argsort(-costs, kind="stable")  # LPT over halos
        for h in order:
            h = int(h)
            c = int(costs[h])
            n = int(counts[h])
            if splittable and c > split_threshold and n >= 2 * min_split_rows:
                # row slabs: each computes rows [s, e) against all n members;
                # per-row cost is ~n pair terms, so even slabs equalize cost
                n_slabs = min(int(np.ceil(c / split_threshold)), n // min_split_rows)
                n_slabs = max(n_slabs, 1)
                bounds = np.linspace(0, n, n_slabs + 1).astype(int)
                n_split += 1
                for s, e in zip(bounds[:-1], bounds[1:]):
                    if e > s:
                        items.append(
                            WorkItem(
                                kind="slab",
                                halo_indices=(h,),
                                cost=int((e - s) * max(n - 1, 1)),
                                row_start=int(s),
                                row_end=int(e),
                            )
                        )
            elif c >= chunk_target:
                items.append(WorkItem(kind="halos", halo_indices=(h,), cost=c))
            else:
                small.append(h)

        # pack the small tail into amortized chunks (still cost-descending)
        chunk: list[int] = []
        chunk_cost = 0
        for h in small:
            chunk.append(h)
            chunk_cost += int(costs[h])
            if chunk_cost >= chunk_target:
                items.append(WorkItem(kind="halos", halo_indices=tuple(chunk), cost=chunk_cost))
                chunk = []
                chunk_cost = 0
        if chunk:
            items.append(WorkItem(kind="halos", halo_indices=tuple(chunk), cost=chunk_cost))

        # global LPT order over the final items
        items.sort(key=lambda it: -it.cost)

        # static seeds: greedy LPT assignment of the head items, one per
        # worker; everything else is the shared steal pool (tail)
        seeds: list[list[int]] = [[] for _ in range(workers)]
        for w in range(min(workers, len(items))):
            seeds[w].append(w)
        pool = list(range(min(workers, len(items)), len(items)))

        # modeled makespan (for the imbalance projection / tests)
        loads = np.zeros(workers)
        for w, ids in enumerate(seeds):
            loads[w] = sum(items[i].cost for i in ids)
        for i in pool:
            w = int(np.argmin(loads))
            loads[w] += items[i].cost
        makespan = float(loads.max()) if len(items) else 0.0

        return cls(
            items=items,
            seeds=seeds,
            pool=pool,
            total_cost=total,
            n_split_halos=n_split,
            split_threshold=split_threshold,
            chunk_target=chunk_target,
            modeled_makespan=makespan,
        )

    # -- invariants (used by tests) -------------------------------------------

    def covered_halos(self) -> dict[int, list[tuple[int, int]]]:
        """Halo id -> list of (row_start, row_end) covering it (whole
        halos report a single ``(0, 0)`` marker)."""
        out: dict[int, list[tuple[int, int]]] = {}
        for it in self.items:
            if it.kind == "slab":
                out.setdefault(it.halo_indices[0], []).append((it.row_start, it.row_end))
            else:
                for h in it.halo_indices:
                    out.setdefault(h, []).append((0, 0))
        return out

    @property
    def n_items(self) -> int:
        return len(self.items)

    def modeled_imbalance(self, serial_cost: float | None = None) -> float:
        """Projected max/mean worker load under greedy LPT."""
        total = serial_cost if serial_cost is not None else float(self.total_cost)
        workers = len(self.seeds)
        if not workers or self.modeled_makespan <= 0:
            return 1.0
        mean = total / workers
        return self.modeled_makespan / mean if mean > 0 else 1.0
