"""Multi-process work-stealing execution engine for per-halo analysis.

The paper's per-halo kernels (MBP center finding, subhalo finding) have
n(n-1) cost over a brutally skewed halo-mass distribution, so *work
placement* — not raw FLOPs — decides wall-clock (§3.3.2, Figure 4).
This package supplies the intra-node parallel executor under the
workflow layer:

- :class:`SharedParticleStore` — zero-copy shared-memory particle arrays
- :class:`HaloWorkQueue` — cost-model-guided LPT schedule with halo
  splitting, small-halo chunking, and a work-stealing tail pool
- :class:`ExecutionEngine` — the multi-process driver with full
  :mod:`repro.obs` instrumentation (per-worker spans, load-imbalance
  gauge, steal counters, dispatch-overhead histogram)
- :func:`parallel_halo_centers` / :func:`parallel_subhalos` — batch
  drivers returning bit-identical results to the serial paths
"""

from .engine import (
    ExecReport,
    ExecutionEngine,
    ItemRecord,
    SubhaloBatchResult,
    WorkerError,
    default_workers,
    parallel_halo_centers,
    parallel_subhalos,
    shutdown_pool,
)
from .sharedmem import SharedParticleStore
from .workqueue import HaloWorkQueue, WorkItem

__all__ = [
    "ExecReport",
    "ExecutionEngine",
    "HaloWorkQueue",
    "ItemRecord",
    "SharedParticleStore",
    "SubhaloBatchResult",
    "WorkItem",
    "WorkerError",
    "default_workers",
    "parallel_halo_centers",
    "parallel_subhalos",
    "shutdown_pool",
]
