"""Zero-copy shared-memory particle arrays for the execution engine.

The paper's per-halo analysis kernels are bandwidth-hungry: shipping a
pickled copy of the particle arrays to every worker process would cost
O(P) serialization per worker and multiply resident memory by the
worker count.  :class:`SharedParticleStore` instead places each array in
a POSIX shared-memory segment (:mod:`multiprocessing.shared_memory`);
workers *attach* and get live NumPy views — zero copies, zero pickling
of bulk data, identical bytes in every process (a prerequisite for the
engine's bit-identical-results guarantee).

Lifecycle::

    store = SharedParticleStore.create(pos=pos, tags=tags, labels=labels)
    spec = store.spec                 # tiny, picklable, sent to workers
    ...                               # workers: SharedParticleStore.attach(spec)
    store.unlink()                    # owner frees the segments

Workers must ``close()`` (not ``unlink()``) their attachment; the
creating process owns the segments and frees them once the batch is
collected.  Both are idempotent and also run via the context-manager
protocol.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, Iterator, Mapping

import numpy as np

from ..check.sanitize import track_store, untrack_store
from ..obs import get_recorder

__all__ = ["SharedParticleStore"]


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering a second owner.

    Python >= 3.13 supports ``track=False`` which keeps the resource
    tracker from double-counting (and spuriously unlinking) segments
    attached by worker processes; on older versions plain attachment is
    used and the creating process remains the single unlinker.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - depends on Python version
        return shared_memory.SharedMemory(name=name)


class SharedParticleStore:
    """A named bundle of NumPy arrays living in shared memory.

    Create with :meth:`create` (copies each array into its own segment),
    ship :attr:`spec` to workers, re-open with :meth:`attach`.  Arrays
    are exposed by name via :meth:`array` / ``store["pos"]``; attached
    views are writable but the engine treats them as read-only inputs.
    """

    def __init__(
        self,
        segments: dict[str, shared_memory.SharedMemory],
        spec: dict[str, tuple[str, tuple[int, ...], str]],
        owner: bool,
    ) -> None:
        self._segments = segments
        self._spec = spec
        self._owner = owner
        self._closed = False
        self._arrays: dict[str, np.ndarray] = {
            field: np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=segments[field].buf)
            for field, (_, shape, dtype_str) in spec.items()
        }

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, **arrays: np.ndarray) -> "SharedParticleStore":
        """Copy keyword arrays into fresh shared-memory segments."""
        segments: dict[str, shared_memory.SharedMemory] = {}
        spec: dict[str, tuple[str, tuple[int, ...], str]] = {}
        try:
            for field, value in arrays.items():
                arr = np.ascontiguousarray(value)
                nbytes = max(int(arr.nbytes), 1)  # zero-size arrays need 1 byte
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                segments[field] = shm
                view: np.ndarray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                spec[field] = (shm.name, tuple(arr.shape), arr.dtype.str)
        except (OSError, MemoryError, ValueError) as exc:
            # OSError/MemoryError: segment allocation failed (e.g. /dev/shm
            # full); ValueError: un-mappable array shape/dtype.  Release the
            # segments already created, report, and re-raise — a half-built
            # store must never escape.
            get_recorder().event(
                "sharedmem.create_failed",
                level="error",
                error=f"{type(exc).__name__}: {exc}",
                segments_rolled_back=len(segments),
            )
            for shm in segments.values():
                shm.close()
                shm.unlink()
            raise
        store = cls(segments, spec, owner=True)
        track_store(store)  # REPRO_SANITIZE=1 leak tracking (no-op otherwise)
        return store

    @classmethod
    def attach(
        cls,
        spec: Mapping[str, tuple[str, tuple[int, ...], str]],
        adopt: bool = False,
    ) -> "SharedParticleStore":
        """Re-open a store from its picklable :attr:`spec` (worker side).

        With ``adopt=True`` the attaching process *takes ownership* of
        the segments (the counterpart of :meth:`release` on the sender):
        its ``unlink()`` frees them, and the leak tracker holds it
        accountable.  Used by the SPMD process transport, where message
        payloads are created by one rank and freed by their receiver.
        """
        segments = {
            field: _attach_segment(name) for field, (name, _, _) in spec.items()
        }
        store = cls(segments, dict(spec), owner=adopt)
        if adopt:
            track_store(store)
        return store

    # -- access ---------------------------------------------------------------

    @property
    def spec(self) -> dict[str, tuple[str, tuple[int, ...], str]]:
        """Picklable description: ``field -> (segment, shape, dtype)``."""
        return dict(self._spec)

    @property
    def fields(self) -> list[str]:
        return list(self._spec)

    @property
    def nbytes(self) -> int:
        """Total shared bytes across all segments."""
        return sum(
            int(np.prod(shape)) * np.dtype(dtype).itemsize
            for _, shape, dtype in self._spec.values()
        )

    def array(self, field: str) -> np.ndarray:
        """Zero-copy view of one array (valid until :meth:`close`)."""
        if self._closed:
            raise RuntimeError("shared store is closed")
        return self._arrays[field]

    def __getitem__(self, field: str) -> np.ndarray:
        return self.array(field)

    def __contains__(self, field: str) -> bool:
        return field in self._spec

    def __iter__(self) -> Iterator[str]:
        return iter(self._spec)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        self._arrays.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def release(self) -> None:
        """Hand segment ownership to another process without freeing.

        Drops this process's mapping and its leak-tracker entry but keeps
        the segments alive: the receiver that re-opens them with
        ``attach(spec, adopt=True)`` becomes the new owner/unlinker.
        """
        if self._owner:
            self._owner = False
            untrack_store(self)
        self.close()

    def unlink(self) -> None:
        """Free the segments (owner only; implies :meth:`close`)."""
        segments = dict(self._segments)
        self.close()
        if not self._owner:
            return
        self._owner = False
        for shm in segments.values():
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        untrack_store(self)  # segments are gone: clear the leak-tracker entry

    def __enter__(self) -> "SharedParticleStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()
