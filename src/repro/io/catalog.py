"""Halo catalogs (Level 3 products) and in-situ/off-line reconciliation.

The combined workflow produces *two* center catalogs — one computed
in-situ for small/medium halos, one computed off-line (possibly on a
different machine) for the off-loaded large halos — which are merged
"in a final step ... to provide a complete set of halo centers and
properties" (paper §4.1).  :func:`merge_catalogs` implements that
reconciliation with duplicate detection.
"""

from __future__ import annotations

import os

import numpy as np

from .genericio import read_genericio, write_genericio

__all__ = ["HaloCatalog", "merge_catalogs"]

_CATALOG_DTYPE = np.dtype(
    [
        ("halo_tag", np.uint64),
        ("count", np.int64),
        ("mass", np.float64),
        ("center_x", np.float64),
        ("center_y", np.float64),
        ("center_z", np.float64),
        ("mbp_tag", np.uint64),
        ("potential", np.float64),
    ]
)


class HaloCatalog:
    """Structured catalog of halos with centers and properties.

    Thin wrapper over a structured :class:`numpy.ndarray` providing the
    operations the workflow engine needs: construction from analysis
    results, sorting, merging, and GenericIO persistence.
    """

    def __init__(self, records: np.ndarray | None = None):
        if records is None:
            records = np.empty(0, dtype=_CATALOG_DTYPE)
        records = np.asarray(records)
        if records.dtype != _CATALOG_DTYPE:
            raise ValueError(f"records must have catalog dtype, got {records.dtype}")
        self.records = records

    @classmethod
    def from_columns(
        cls,
        halo_tag: np.ndarray,
        count: np.ndarray,
        center: np.ndarray,
        mbp_tag: np.ndarray | None = None,
        potential: np.ndarray | None = None,
        particle_mass: float = 1.0,
    ) -> "HaloCatalog":
        """Assemble a catalog from per-halo column arrays."""
        n = len(halo_tag)
        center = np.atleast_2d(np.asarray(center, dtype=float))
        if center.shape != (n, 3):
            raise ValueError("center must have shape (n, 3)")
        rec = np.empty(n, dtype=_CATALOG_DTYPE)
        rec["halo_tag"] = np.asarray(halo_tag, dtype=np.uint64)
        rec["count"] = np.asarray(count, dtype=np.int64)
        rec["mass"] = rec["count"] * particle_mass
        rec["center_x"] = center[:, 0]
        rec["center_y"] = center[:, 1]
        rec["center_z"] = center[:, 2]
        rec["mbp_tag"] = (
            np.zeros(n, dtype=np.uint64) if mbp_tag is None else np.asarray(mbp_tag, np.uint64)
        )
        rec["potential"] = (
            np.zeros(n) if potential is None else np.asarray(potential, dtype=float)
        )
        return cls(rec)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, key: str) -> np.ndarray:
        return self.records[key]

    @property
    def centers(self) -> np.ndarray:
        """``(n, 3)`` center coordinates."""
        return np.column_stack(
            [self.records["center_x"], self.records["center_y"], self.records["center_z"]]
        )

    def sorted_by_tag(self) -> "HaloCatalog":
        """Catalog ordered by halo tag (canonical order for comparisons)."""
        return HaloCatalog(np.sort(self.records, order="halo_tag"))

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | os.PathLike) -> int:
        """Write as a single-block GenericIO file; returns payload bytes."""
        cols = {name: np.ascontiguousarray(self.records[name]) for name in _CATALOG_DTYPE.names}
        return write_genericio(path, [cols])

    @classmethod
    def load(cls, path: str | os.PathLike) -> "HaloCatalog":
        """Read a catalog written by :meth:`save`."""
        cols = read_genericio(path)
        n = len(cols["halo_tag"])
        rec = np.empty(n, dtype=_CATALOG_DTYPE)
        for name in _CATALOG_DTYPE.names:
            rec[name] = cols[name]
        return cls(rec)


def merge_catalogs(*catalogs: HaloCatalog) -> HaloCatalog:
    """Reconcile catalogs into one complete set of halo centers.

    Each halo must appear in exactly one input catalog (the in-situ
    catalog holds the small/medium halos, the off-line catalog the
    off-loaded large ones).  A duplicate halo tag across inputs raises,
    catching workflow bugs where a halo was analyzed twice or the
    split threshold was applied inconsistently.
    """
    parts = [c.records for c in catalogs if len(c)]
    if not parts:
        return HaloCatalog()
    merged = np.concatenate(parts)
    tags = merged["halo_tag"]
    uniq, counts = np.unique(tags, return_counts=True)
    dupes = uniq[counts > 1]
    if dupes.size:
        raise ValueError(
            f"halo tags present in multiple catalogs: {dupes[:10].tolist()}"
            + ("..." if dupes.size > 10 else "")
        )
    return HaloCatalog(np.sort(merged, order="halo_tag"))
