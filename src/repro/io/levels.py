"""Data-level hierarchy (Level 1 / 2 / 3) and size accounting (Table 1).

The paper describes HACC's data hierarchy:

* **Level 1** — raw output: all particles (36 bytes each) or grids.
* **Level 2** — products of analysis over all Level 1 data: halo
  particles (particles in halos above the off-load threshold), density
  fields, particle subsamples.  Volume reduction of ~5x for the Q
  Continuum threshold choice.
* **Level 3** — further-derived products: halo centers and properties,
  mass functions, catalogs.  Tiny compared to Level 2.

This module carries both the schemas and the analytic size model used
to regenerate Table 1 at 1024³ and 8192³ scale from ratios measured on
our small runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..sim.particles import BYTES_PER_PARTICLE

__all__ = [
    "DataLevel",
    "HALO_CENTER_RECORD_BYTES",
    "level1_bytes",
    "level2_bytes",
    "level3_bytes",
    "DataLevelSizes",
    "table1_row",
]


class DataLevel(enum.IntEnum):
    """The three data-product levels of the HACC hierarchy."""

    RAW = 1
    REDUCED = 2
    DERIVED = 3


#: Bytes per halo record in a Level 3 center catalog: halo tag (8),
#: center xyz (12), MBP tag (8), count (8), mass (4), potential (4),
#: radius (4), padding/flags (4) = 52 bytes.  The paper's 43 MB for
#: ~ 0.9M halos at 1024^3 implies ~48 B/halo; 52 is the same order.
HALO_CENTER_RECORD_BYTES = 52


def level1_bytes(n_particles: int) -> int:
    """Raw snapshot size: 36 bytes per particle (paper §3)."""
    return int(n_particles) * BYTES_PER_PARTICLE


def level2_bytes(n_halo_particles: int) -> int:
    """Level 2 halo-particle dump: same 36-byte record per kept particle."""
    return int(n_halo_particles) * BYTES_PER_PARTICLE


def level3_bytes(n_halos: int) -> int:
    """Level 3 center-catalog size."""
    return int(n_halos) * HALO_CENTER_RECORD_BYTES


@dataclass(frozen=True)
class DataLevelSizes:
    """Measured or projected sizes of one snapshot's three levels."""

    n_particles: int
    n_level2_particles: int
    n_halos: int

    @property
    def level1(self) -> int:
        return level1_bytes(self.n_particles)

    @property
    def level2(self) -> int:
        return level2_bytes(self.n_level2_particles)

    @property
    def level3(self) -> int:
        return level3_bytes(self.n_halos)

    @property
    def reduction_factor(self) -> float:
        """Level 1 / Level 2 volume ratio (paper: ~5x for Q Continuum)."""
        if self.n_level2_particles == 0:
            return float("inf")
        return self.level1 / self.level2

    def scaled(self, particle_factor: float, halo_factor: float | None = None) -> "DataLevelSizes":
        """Self-similar scaling to a larger run.

        ``particle_factor`` scales particle counts (e.g. 512 from 1024³ to
        8192³); ``halo_factor`` scales the halo count (defaults to the
        particle factor — halo abundance is proportional to volume at
        fixed mass resolution).
        """
        hf = particle_factor if halo_factor is None else halo_factor
        return DataLevelSizes(
            n_particles=int(self.n_particles * particle_factor),
            n_level2_particles=int(self.n_level2_particles * particle_factor),
            n_halos=int(self.n_halos * hf),
        )


def table1_row(sizes: DataLevelSizes) -> dict[str, float]:
    """One row of Table 1: sizes in bytes per level for the last step."""
    return {
        "level1_bytes": sizes.level1,
        "level2_bytes": sizes.level2,
        "level3_bytes": sizes.level3,
        "reduction_factor": sizes.reduction_factor,
    }
