"""I/O substrate: GenericIO-style block files, data levels, halo catalogs."""

from .catalog import HaloCatalog, merge_catalogs
from .genericio import (
    GenericIOError,
    GenericIOFile,
    read_block,
    read_genericio,
    write_genericio,
)
from .levels import (
    DataLevel,
    DataLevelSizes,
    HALO_CENTER_RECORD_BYTES,
    level1_bytes,
    level2_bytes,
    level3_bytes,
    table1_row,
)

__all__ = [
    "HaloCatalog",
    "merge_catalogs",
    "GenericIOError",
    "GenericIOFile",
    "read_block",
    "read_genericio",
    "write_genericio",
    "DataLevel",
    "DataLevelSizes",
    "HALO_CENTER_RECORD_BYTES",
    "level1_bytes",
    "level2_bytes",
    "level3_bytes",
    "table1_row",
]
