"""Block-structured binary snapshot format (GenericIO analogue).

HACC writes its outputs with GenericIO: each rank contributes one
*block* of per-particle variables, blocks are aggregated into a smaller
number of files (the paper aggregates 128 Titan nodes per file, giving
128 files x 128 blocks for the Q Continuum Level 2 data), and every
block carries a checksum.

This module reproduces that layout:

* a file holds a schema (ordered variable names + dtypes) and N blocks;
* each block is one rank's rows for every variable, stored contiguously
  per variable (SoA), with a CRC32 per variable;
* blocks are independently readable — an analysis job can read a single
  block without touching the rest of the file (how the Moonlight
  single-node jobs consumed one block each).

File layout (little-endian)::

    magic "RGIO1\\0"            6 bytes
    header_json_len             uint64
    header_json                 UTF-8 JSON: schema, block index
    block data ...              raw variable bytes, per block, per var

Failure model (see ``docs/failures.md``): writes and block reads run
under a :class:`~repro.faults.RetryPolicy` at the ``"io.write"`` /
``"io.read"`` injection sites.  Only injected faults and ``OSError``
(transient file-system hiccups) are retried — a write simply re-opens
and re-writes the file (idempotent), a read re-reads the block.
Deterministic corruption (:class:`GenericIOError` on bad magic or CRC
mismatch) propagates immediately: re-reading a corrupt file cannot
help, and callers keep catching the type they already catch.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass

import numpy as np

from ..faults import FaultInjected, RetryPolicy, maybe_inject, resolve_retry
from ..obs import get_recorder

__all__ = ["GenericIOError", "write_genericio", "read_genericio", "read_block", "GenericIOFile"]

MAGIC = b"RGIO1\x00"


class GenericIOError(RuntimeError):
    """Raised on malformed files or checksum mismatches."""


@dataclass(frozen=True)
class _BlockEntry:
    nrows: int
    offsets: dict[str, int]  # variable -> absolute file offset
    crcs: dict[str, int]


def _dtype_token(dt: np.dtype) -> str:
    return np.dtype(dt).str  # e.g. '<f4'


def write_genericio(
    path: str | os.PathLike,
    blocks: list[dict[str, np.ndarray]],
    retry: RetryPolicy | None = None,
    meta: dict | None = None,
) -> int:
    """Write ``blocks`` (one dict of equal-length arrays per rank) to ``path``.

    All blocks must share the same variable names and dtypes.  Returns the
    number of payload bytes written (used by the I/O cost accounting).
    The physical write runs under ``retry`` (``None`` → the tree-wide
    default) at the ``"io.write"`` fault site; re-writing is idempotent.
    ``meta`` is an optional JSON-serializable dict stored in the header
    (physical parameters like the box side, slab ordering flags) and
    exposed as :attr:`GenericIOFile.meta`.
    """
    if not blocks:
        raise ValueError("need at least one block")
    schema = [(name, _dtype_token(arr.dtype)) for name, arr in blocks[0].items()]
    names = [n for n, _ in schema]
    for bi, blk in enumerate(blocks):
        if list(blk.keys()) != names:
            raise ValueError(f"block {bi} variables {list(blk)} != schema {names}")
        n = len(next(iter(blk.values())))
        for name, arr in blk.items():
            if len(arr) != n:
                raise ValueError(f"block {bi} variable {name!r} length mismatch")

    # First pass: compute sizes to build the block index.
    index = []
    payload_bytes = 0
    for blk in blocks:
        entry = {"nrows": int(len(next(iter(blk.values())))), "vars": {}}
        for name, arr in blk.items():
            arr = np.ascontiguousarray(arr)
            raw = arr.tobytes()
            entry["vars"][name] = {
                "nbytes": len(raw),
                "crc": zlib.crc32(raw) & 0xFFFFFFFF,
                "shape": list(arr.shape),
            }
            payload_bytes += len(raw)
        index.append(entry)

    header = {"schema": schema, "blocks": index}
    if meta:
        header["meta"] = meta
    header_json = json.dumps(header).encode()

    # Assign offsets now that the header size is known.
    base = len(MAGIC) + 8 + len(header_json)
    offset = base
    for entry in index:
        for name in names:
            entry["vars"][name]["offset"] = offset
            offset += entry["vars"][name]["nbytes"]
    header_json = json.dumps(header).encode()
    # Header length may change once offsets are embedded; fix point it.
    while True:
        base = len(MAGIC) + 8 + len(header_json)
        changed = False
        offset = base
        for entry in index:
            for name in names:
                if entry["vars"][name]["offset"] != offset:
                    entry["vars"][name]["offset"] = offset
                    changed = True
                offset += entry["vars"][name]["nbytes"]
        header_json = json.dumps(header).encode()
        if not changed:
            break

    rec = get_recorder()
    fname = os.path.basename(os.fspath(path))

    def _write_attempt() -> None:
        maybe_inject("io.write", fname)
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(len(header_json).to_bytes(8, "little"))
            fh.write(header_json)
            for blk in blocks:
                for name in names:
                    fh.write(np.ascontiguousarray(blk[name]).tobytes())

    with rec.span("io.write", path=os.fspath(path), nbytes=payload_bytes):
        resolve_retry(retry).run(
            _write_attempt,
            site="io.write",
            key=fname,
            retryable=(FaultInjected, OSError),
        )
    rec.counter("io_write_bytes_total").inc(payload_bytes)
    rec.counter("io_files_written_total").inc()
    return payload_bytes


class GenericIOFile:
    """Reader handle exposing the schema and per-block access.

    Block reads run under ``retry`` (``None`` → the tree-wide default)
    at the ``"io.read"`` fault site; injected faults and ``OSError``
    are retried, :class:`GenericIOError` (corruption) is not.

    CRC validation is *lazy* by default: opening the file parses only
    the header, and each block's checksums are verified when that block
    is first read — a chunked reader never pays full-file checksum cost
    up front.  Pass ``verify="eager"`` to restore whole-file validation
    at open (every section CRC checked before the constructor returns).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        retry: RetryPolicy | None = None,
        verify: str = "lazy",
    ):
        if verify not in ("lazy", "eager"):
            raise ValueError(f"verify must be 'lazy' or 'eager', got {verify!r}")
        self.path = os.fspath(path)
        self.retry = resolve_retry(retry)
        with open(self.path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise GenericIOError(f"{self.path}: bad magic {magic!r}")
            hlen = int.from_bytes(fh.read(8), "little")
            header = json.loads(fh.read(hlen).decode())
        self.schema: list[tuple[str, str]] = [tuple(s) for s in header["schema"]]
        self._blocks = header["blocks"]
        self.meta: dict = header.get("meta", {})
        if verify == "eager":
            self._verify_all()

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def variables(self) -> list[str]:
        return [name for name, _ in self.schema]

    def block_rows(self, block: int) -> int:
        """Row count of one block without reading its data."""
        return int(self._blocks[block]["nrows"])

    @property
    def total_rows(self) -> int:
        """Total row count across all blocks (header only, no data read)."""
        return sum(int(entry["nrows"]) for entry in self._blocks)

    def _verify_all(self) -> None:
        """Eager open-time validation: CRC-check every section once."""
        with get_recorder().span("io.verify", path=self.path, blocks=self.num_blocks):
            for block in range(self.num_blocks):
                entry = self._blocks[block]
                with open(self.path, "rb") as fh:
                    for name, _ in self.schema:
                        var = entry["vars"][name]
                        fh.seek(var["offset"])
                        raw = fh.read(var["nbytes"])
                        if len(raw) != var["nbytes"]:
                            raise GenericIOError(
                                f"{self.path} block {block} var {name}: truncated"
                            )
                        if (zlib.crc32(raw) & 0xFFFFFFFF) != var["crc"]:
                            raise GenericIOError(
                                f"{self.path} block {block} var {name}: CRC mismatch"
                            )

    def read_block(
        self,
        block: int,
        verify: bool = True,
        variables: list[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Read one block, optionally verifying per-variable CRC32.

        ``variables`` restricts the read to a subset of columns (schema
        order); the default reads every variable.  The physical read is
        retried on injected faults / ``OSError``; a CRC mismatch raises
        :class:`GenericIOError` immediately.
        """
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range [0, {self.num_blocks})")
        names = self._select(variables)
        key = f"{os.path.basename(self.path)}:{block}"
        rec = get_recorder()
        with rec.span("io.read_block", path=self.path, block=block):
            out, nbytes = self.retry.call(
                self._read_block_attempt,
                block,
                verify,
                key,
                names,
                site="io.read",
                key=key,
                retryable=(FaultInjected, OSError),
            )
        rec.counter("io_read_bytes_total").inc(nbytes)
        rec.counter("io_blocks_read_total").inc()
        return out

    def _select(self, variables: list[str] | None) -> list[tuple[str, str]]:
        """Schema entries for a requested variable subset (schema order)."""
        if variables is None:
            return self.schema
        known = dict(self.schema)
        missing = [v for v in variables if v not in known]
        if missing:
            raise KeyError(f"{self.path}: unknown variables {missing}")
        want = set(variables)
        return [(name, dtok) for name, dtok in self.schema if name in want]

    def _read_block_attempt(
        self, block: int, verify: bool, key: str, names: list[tuple[str, str]]
    ) -> tuple[dict[str, np.ndarray], int]:
        """One physical block read (the unit the retry policy repeats)."""
        maybe_inject("io.read", key)
        entry = self._blocks[block]
        out: dict[str, np.ndarray] = {}
        nbytes = 0
        with open(self.path, "rb") as fh:
            for name, dtok in names:
                var = entry["vars"][name]
                fh.seek(var["offset"])
                raw = fh.read(var["nbytes"])
                if len(raw) != var["nbytes"]:
                    raise GenericIOError(f"{self.path} block {block} var {name}: truncated")
                if verify and (zlib.crc32(raw) & 0xFFFFFFFF) != var["crc"]:
                    raise GenericIOError(
                        f"{self.path} block {block} var {name}: CRC mismatch"
                    )
                arr = np.frombuffer(raw, dtype=np.dtype(dtok))
                out[name] = arr.reshape(var["shape"])
                nbytes += var["nbytes"]
        return out, nbytes

    def iter_chunks(
        self,
        chunk_rows: int,
        variables: list[str] | None = None,
        verify: bool = True,
    ):
        """Iterate fixed-size row chunks across block boundaries.

        Yields dicts of arrays with exactly ``chunk_rows`` rows each
        (the final chunk may be shorter).  Blocks are read — and their
        CRCs checked — one at a time as the iteration reaches them, so
        peak memory is O(chunk + one block) regardless of file size.
        """
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        names = [name for name, _ in self._select(variables)]
        pending: dict[str, list[np.ndarray]] = {name: [] for name in names}
        buffered = 0

        def take(count: int) -> dict[str, np.ndarray]:
            nonlocal buffered
            out: dict[str, np.ndarray] = {}
            for name in names:
                parts: list[np.ndarray] = []
                need = count
                queue = pending[name]
                while need > 0:
                    head = queue[0]
                    if len(head) <= need:
                        parts.append(queue.pop(0))
                        need -= len(head)
                    else:
                        parts.append(head[:need])
                        queue[0] = head[need:]
                        need = 0
                out[name] = parts[0] if len(parts) == 1 else np.concatenate(parts)
            buffered -= count
            return out

        for block in range(self.num_blocks):
            data = self.read_block(block, verify=verify, variables=variables)
            nrows = self.block_rows(block)
            for name in names:
                pending[name].append(data[name])
            buffered += nrows
            while buffered >= chunk_rows:
                yield take(chunk_rows)
        if buffered:
            yield take(buffered)

    def read_all(self, verify: bool = True) -> dict[str, np.ndarray]:
        """Concatenate every block into one bundle (rank order)."""
        with get_recorder().span("io.read", path=self.path, blocks=self.num_blocks):
            parts = [self.read_block(b, verify=verify) for b in range(self.num_blocks)]
            return {
                name: np.concatenate([p[name] for p in parts])
                for name, _ in self.schema
            }


def read_genericio(path: str | os.PathLike, verify: bool = True) -> dict[str, np.ndarray]:
    """Read and concatenate all blocks of a GenericIO file."""
    return GenericIOFile(path).read_all(verify=verify)


def read_block(path: str | os.PathLike, block: int, verify: bool = True) -> dict[str, np.ndarray]:
    """Read a single block of a GenericIO file."""
    return GenericIOFile(path).read_block(block, verify=verify)
