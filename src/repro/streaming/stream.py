"""Particle streams: the chunked input side of the one-pass engine.

A :class:`ParticleStream` yields fixed-size particle chunks — dicts with
``"pos"`` (``(n, 3)`` float64, box coordinates) and ``"tag"`` (``(n,)``
int64, globally unique) — **slab-ordered**: the wrapped x coordinate is
globally non-decreasing across chunks.  That ordering is the load-bearing
contract of the incremental halo finder (see ``docs/streaming.md``): it
is what bounds the boundary ring the finder must keep resident, and
:class:`~repro.streaming.fof.StreamingFOF` verifies it chunk by chunk.

Two concrete sources present the same iterator:

:class:`ArrayStream`
    In-memory arrays (or a :class:`~repro.sim.particles.Particles`
    snapshot), slab-sorted on construction — the shape the in-situ
    preview tier uses.

:class:`GenericIOStream`
    An on-disk GenericIO file written by :func:`write_slab_snapshot`,
    read block by block (CRC checked lazily per block) and re-chunked to
    ``chunk_rows`` without ever materializing the full snapshot.

Failure model: every chunk hand-off passes the ``"stream.read"`` fault
site under a :class:`~repro.faults.RetryPolicy` — injected faults and
transient ``OSError`` are retried without losing stream position, since
the guard fires before the chunk is consumed.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

import numpy as np

from ..faults import FaultInjected, RetryPolicy, maybe_inject, resolve_retry
from ..io.genericio import GenericIOFile, write_genericio
from ..obs import get_recorder

if TYPE_CHECKING:
    from ..sim.particles import Particles

__all__ = [
    "ParticleStream",
    "ArrayStream",
    "GenericIOStream",
    "slab_order",
    "write_slab_snapshot",
]

Chunk = dict[str, np.ndarray]


@runtime_checkable
class ParticleStream(Protocol):
    """What the streaming engine consumes: a re-iterable chunk source.

    ``box`` is the periodic box side; ``chunk_rows`` the nominal chunk
    size (the last chunk may be shorter); ``n_total`` the total particle
    count when known (``None`` for unbounded sources).  Iteration yields
    slab-ordered ``{"pos", "tag"}`` chunks.
    """

    box: float
    chunk_rows: int

    @property
    def n_total(self) -> int | None: ...

    def __iter__(self) -> Iterator[Chunk]: ...


def slab_order(pos: np.ndarray, box: float) -> np.ndarray:
    """Stable permutation sorting particles by wrapped x (slab order)."""
    x = np.mod(np.asarray(pos, dtype=np.float64)[:, 0], box)
    return np.argsort(x, kind="stable")


def _guard_chunk(retry: RetryPolicy, key: str) -> None:
    """One ``stream.read`` fault-site crossing, retried transparently.

    The guard runs *before* the chunk is handed to the consumer and
    consumes no stream state itself, so a retried attempt re-delivers
    the identical chunk — mid-stream transients cost retries, not data.
    """
    retry.run(
        lambda: maybe_inject("stream.read", key),
        site="stream.read",
        key=key,
        retryable=(FaultInjected, OSError),
    )


class ArrayStream:
    """Slab-ordered chunk view over in-memory particle arrays.

    Sorts (a copy of) the inputs by wrapped x on construction; iteration
    then just slices, so the same instance can be streamed many times
    (``check_determinism`` runs a campaign twice off one stream).
    """

    def __init__(
        self,
        pos: np.ndarray,
        box: float,
        tags: np.ndarray | None = None,
        chunk_rows: int = 65536,
        retry: RetryPolicy | None = None,
    ):
        if box <= 0:
            raise ValueError("box must be positive")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
        n = len(pos)
        tag = (
            np.arange(n, dtype=np.int64)
            if tags is None
            else np.asarray(tags, dtype=np.int64)
        )
        if len(tag) != n:
            raise ValueError("tags length mismatch")
        order = slab_order(pos, box)
        self._pos = np.mod(pos[order], box)
        self._tag = tag[order]
        self.box = float(box)
        self.chunk_rows = int(chunk_rows)
        self._retry = resolve_retry(retry)

    @classmethod
    def from_particles(
        cls, particles: "Particles", chunk_rows: int = 65536
    ) -> "ArrayStream":
        """Stream view over a particle snapshot (tags narrowed to int64)."""
        return cls(
            particles.pos,
            box=particles.box,
            tags=np.asarray(particles.tag, dtype=np.int64),
            chunk_rows=chunk_rows,
        )

    @property
    def n_total(self) -> int | None:
        return len(self._tag)

    def __iter__(self) -> Iterator[Chunk]:
        rec = get_recorder()
        n = len(self._tag)
        for i, start in enumerate(range(0, n, self.chunk_rows)):
            _guard_chunk(self._retry, f"array:{i}")
            stop = min(start + self.chunk_rows, n)
            rec.counter("stream_chunks_read_total").inc()
            yield {"pos": self._pos[start:stop], "tag": self._tag[start:stop]}


class GenericIOStream:
    """Slab-ordered chunk reader over a GenericIO snapshot file.

    The file must have been written in slab order (x globally
    non-decreasing across blocks — :func:`write_slab_snapshot` does
    this and stamps ``meta["slab_axis"] = 0``); the downstream finder
    verifies and raises otherwise.  Only one block plus one chunk is
    resident at a time, CRCs checked lazily as each block is reached.
    ``box`` defaults to the file's ``meta["box"]``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        chunk_rows: int = 65536,
        box: float | None = None,
        retry: RetryPolicy | None = None,
        verify: bool = True,
    ):
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.path = os.fspath(path)
        self._file = GenericIOFile(self.path, retry=retry)
        if box is None:
            box = self._file.meta.get("box")
            if box is None:
                raise ValueError(
                    f"{self.path}: no box given and none in the file meta"
                )
        self.box = float(box)
        self.chunk_rows = int(chunk_rows)
        self.verify = bool(verify)
        self._retry = resolve_retry(retry)

    @property
    def n_total(self) -> int | None:
        return self._file.total_rows

    @property
    def num_blocks(self) -> int:
        return self._file.num_blocks

    def __iter__(self) -> Iterator[Chunk]:
        rec = get_recorder()
        fname = os.path.basename(self.path)
        chunks = self._file.iter_chunks(
            self.chunk_rows, variables=["pos", "tag"], verify=self.verify
        )
        for i, data in enumerate(chunks):
            _guard_chunk(self._retry, f"{fname}:{i}")
            rec.counter("stream_chunks_read_total").inc()
            yield {
                "pos": np.asarray(data["pos"], dtype=np.float64),
                "tag": np.asarray(data["tag"], dtype=np.int64),
            }


def write_slab_snapshot(
    path: str | os.PathLike,
    pos: np.ndarray,
    box: float,
    tags: np.ndarray | None = None,
    block_rows: int = 262144,
    retry: RetryPolicy | None = None,
) -> int:
    """Write a slab-ordered GenericIO snapshot for streaming analysis.

    Sorts particles by wrapped x, splits them into blocks of
    ``block_rows`` (the independently CRC'd read unit), and stamps the
    box side and slab axis into the header meta so
    :class:`GenericIOStream` is self-describing.  Returns payload bytes.
    """
    if box <= 0:
        raise ValueError("box must be positive")
    if block_rows < 1:
        raise ValueError("block_rows must be >= 1")
    pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
    n = len(pos)
    tag = (
        np.arange(n, dtype=np.int64)
        if tags is None
        else np.asarray(tags, dtype=np.int64)
    )
    if len(tag) != n:
        raise ValueError("tags length mismatch")
    order = slab_order(pos, box)
    spos = np.mod(pos[order], box)
    stag = tag[order]
    blocks = []
    for start in range(0, max(n, 1), block_rows):
        stop = min(start + block_rows, n)
        blocks.append({"pos": spos[start:stop], "tag": stag[start:stop]})
    return write_genericio(
        path,
        blocks,
        retry=retry,
        meta={"box": float(box), "slab_axis": 0, "n_total": int(n)},
    )
