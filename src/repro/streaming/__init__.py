"""repro.streaming — bounded-memory one-pass analysis over particle streams.

The analysis chain for snapshots that cannot be memory-resident (the
paper's Q Continuum Level 1 outputs): chunked slab-ordered streams, an
incremental FOF with a boundary-halo ring, fixed-size one-pass
accumulators (mass function, Misra–Gries heavy hitters, CIC power
spectrum), and a double-buffered prefetch stage — with an exactness
contract against the in-memory pipeline (``docs/streaming.md``).

Typical use::

    from repro.streaming import GenericIOStream, StreamingAnalysis

    stream = GenericIOStream("l1_step0499.gio", chunk_rows=1 << 16)
    engine = StreamingAnalysis(
        linking_length=0.2 * mean_separation,
        mass_function_bins=(40, 1e6, 32),
        power_spectrum_ng=128,
        heavy_hitter_k=32,
    )
    result = engine.run(stream)
    result.catalog.halo_tags        # == in-memory fof_grid, bit-identical
"""

from .accumulators import MisraGries, StreamingMassFunction, StreamingPowerSpectrum
from .engine import StreamingAnalysis, StreamingResult
from .fof import GroupForest, StreamedCatalog, StreamingFOF, StreamOrderError
from .prefetch import PrefetchStream
from .stream import (
    ArrayStream,
    GenericIOStream,
    ParticleStream,
    slab_order,
    write_slab_snapshot,
)

__all__ = [
    "ArrayStream",
    "GenericIOStream",
    "GroupForest",
    "MisraGries",
    "ParticleStream",
    "PrefetchStream",
    "slab_order",
    "StreamOrderError",
    "StreamedCatalog",
    "StreamingAnalysis",
    "StreamingFOF",
    "StreamingMassFunction",
    "StreamingPowerSpectrum",
    "StreamingResult",
    "write_slab_snapshot",
]
