"""One-pass incremental friends-of-friends over slab-ordered streams.

The bounded-memory half of the arXiv:1711.00975 blueprint: particles
arrive in chunks sorted by wrapped x, each chunk is linked against a
*boundary ring* of still-linkable earlier particles, and finished groups
are retired to accumulators as soon as geometry proves no future
particle can join them.

Exactness argument (the contract ``docs/streaming.md`` spells out):

* Let ``frontier`` be the largest x seen so far.  Slab order means every
  future particle has ``x >= frontier``.
* The ring keeps exactly the particles with ``x >= frontier - ll``
  (tail slab: directly linkable to the future) or ``x <= ll`` (head
  slab: linkable to the box's far edge through the periodic wrap).  Any
  linkable pair ``(p earlier, q later)`` therefore still has ``p``
  resident when ``q`` arrives: ``qx >= frontier`` implies
  ``px >= qx - ll >= frontier - ll`` for a direct link, and a wrapped
  link forces ``px <= ll``.
* Per chunk, one :func:`~repro.analysis.fof.fof_grid` call over
  ``ring + chunk`` finds every new edge (the periodic metric links the
  head slab to late chunks with no extra pass), and components are
  merged into persistent groups through a
  :class:`~repro.analysis.union_find.GrowableDisjointSet`.
* A group with no remaining ring member can never gain another
  particle; it is *retired* — its ``(min tag, count)`` pair emitted —
  and the forest compacted, so resident state is
  O(chunk + ring + active groups).

The emitted catalog is bit-identical to the in-memory finder's
``(halo_tags, halo_counts)`` for any chunk size: membership is exact by
the argument above, and both sides identify a halo by its minimum
particle tag.

Implementation note: the ISSUE sketches per-chunk linking via
:class:`~repro.analysis.spatial_index.PeriodicCellIndex`; that index
allocates a *dense* ``ncell³`` prefix array (1 GB at box/ll = 500), so
chunk linking reuses ``fof_grid``'s occupied-cell machinery instead —
same cell-list algorithm, memory proportional to occupied cells only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis.fof import DEFAULT_MIN_COUNT, fof_grid
from ..analysis.union_find import GrowableDisjointSet

__all__ = ["StreamOrderError", "StreamedCatalog", "StreamingFOF", "GroupForest"]

_NO_TAG = np.iinfo(np.int64).max


class StreamOrderError(ValueError):
    """The stream violated the slab-order (non-decreasing x) contract."""


@dataclass(frozen=True)
class StreamedCatalog:
    """Halo catalog from a streamed run: ``(min tag, count)`` per halo.

    ``halo_tags``/``halo_counts`` are sorted by tag and bit-comparable
    to :class:`~repro.analysis.fof.FOFResult` on the same particles.
    """

    halo_tags: np.ndarray
    halo_counts: np.ndarray
    min_count: int
    n_particles: int

    @property
    def n_halos(self) -> int:
        return len(self.halo_tags)


class GroupForest:
    """Active halo groups: growable union-find + per-group aggregates.

    Slots mirror the :class:`GrowableDisjointSet` universe; ``counts``
    and ``min_tags`` are maintained at component roots (folded on union,
    gathered on compaction).
    """

    def __init__(self) -> None:
        self.dsu = GrowableDisjointSet()
        self.counts = np.zeros(16, dtype=np.int64)
        self.min_tags = np.full(16, _NO_TAG, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.dsu)

    def new_groups(self, k: int) -> np.ndarray:
        """Create ``k`` empty groups; returns their slot ids."""
        start = self.dsu.add(k)
        end = start + k
        if end > len(self.counts):
            cap = max(2 * len(self.counts), end)
            grown_c = np.zeros(cap, dtype=np.int64)
            grown_c[:start] = self.counts[:start]
            grown_t = np.full(cap, _NO_TAG, dtype=np.int64)
            grown_t[:start] = self.min_tags[:start]
            self.counts, self.min_tags = grown_c, grown_t
        self.counts[start:end] = 0
        self.min_tags[start:end] = _NO_TAG
        return np.arange(start, end, dtype=np.intp)

    def union(self, a: int, b: int) -> int:
        """Merge two groups, folding counts/min-tags into the new root."""
        ra, rb = self.dsu.find(a), self.dsu.find(b)
        if ra == rb:
            return ra
        r = self.dsu.union(ra, rb)
        other = rb if r == ra else ra
        self.counts[r] += self.counts[other]
        self.min_tags[r] = min(self.min_tags[r], self.min_tags[other])
        return r

    def fold(self, roots: np.ndarray, counts: np.ndarray, min_tags: np.ndarray) -> None:
        """Add member counts / min tags at roots (repeats accumulate)."""
        np.add.at(self.counts, roots, counts)
        np.minimum.at(self.min_tags, roots, min_tags)

    def roots(self) -> np.ndarray:
        return self.dsu.roots()

    def compact(self, keep_roots: np.ndarray) -> np.ndarray:
        """Drop all but ``keep_roots``; returns the sorted old-root map."""
        old = self.dsu.compact(keep_roots)
        k = len(old)
        self.counts[:k] = self.counts[old]
        self.min_tags[:k] = self.min_tags[old]
        return old


class StreamingFOF:
    """Incremental FOF over slab-ordered chunks (periodic box).

    Feed chunks with :meth:`ingest`; call :meth:`finalize` for the
    catalog.  ``on_retire(tags, counts)`` fires whenever halos (groups
    with ``count >= min_count``) become final — the hook the one-pass
    accumulators fold; retirement order is deterministic (sorted by tag
    within each batch, batches in stream order).
    """

    def __init__(
        self,
        box: float,
        linking_length: float,
        min_count: int = DEFAULT_MIN_COUNT,
        on_retire: Callable[[np.ndarray, np.ndarray], None] | None = None,
    ):
        if box <= 0:
            raise ValueError("box must be positive")
        if not 0 < linking_length < box:
            raise ValueError("need 0 < linking_length < box")
        self.box = float(box)
        self.linking_length = float(linking_length)
        self.min_count = int(min_count)
        self.on_retire = on_retire
        self._forest = GroupForest()
        self._ring_pos = np.empty((0, 3), dtype=np.float64)
        self._ring_group = np.empty(0, dtype=np.intp)
        self._frontier = -np.inf
        self._tags_seen: list[np.ndarray] = []  # only retired outputs, not members
        self._counts_seen: list[np.ndarray] = []
        self.n_particles = 0
        self.n_chunks = 0
        self.peak_resident = 0
        self._closed = False

    # -- introspection (what the engine exports as gauges) ------------------

    @property
    def ring_size(self) -> int:
        return len(self._ring_group)

    @property
    def active_groups(self) -> int:
        return self._forest.dsu.n_components

    # -- the per-chunk step -------------------------------------------------

    def ingest(self, pos: np.ndarray, tags: np.ndarray) -> None:
        """Link one slab-ordered chunk and retire finished groups."""
        if self._closed:
            raise RuntimeError("finalize() already called")
        pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
        tags = np.asarray(tags, dtype=np.int64)
        n_c = len(pos)
        if len(tags) != n_c:
            raise ValueError("tags length mismatch")
        self.n_chunks += 1
        if n_c == 0:
            return
        pos = np.mod(pos, self.box)
        x = pos[:, 0]
        xmin = float(x.min())
        if xmin < self._frontier:
            raise StreamOrderError(
                f"chunk {self.n_chunks - 1} min x {xmin:.6g} < frontier "
                f"{self._frontier:.6g}: stream is not slab-ordered"
            )

        forest = self._forest
        ll = self.linking_length
        n_r = len(self._ring_group)
        resident_pos = np.concatenate([self._ring_pos, pos])
        self.peak_resident = max(self.peak_resident, len(resident_pos))

        # one periodic cell-list pass over ring + chunk finds every new
        # edge, including head-slab links through the x wrap
        local = fof_grid(resident_pos, ll, tags=None, min_count=1, box=self.box)
        _, comp_inv = np.unique(local.labels, return_inverse=True)
        n_comp = int(comp_inv.max()) + 1 if len(comp_inv) else 0
        chunk_inv = comp_inv[n_r:]

        # per-component aggregates over the chunk's members
        chunk_counts = np.bincount(chunk_inv, minlength=n_comp).astype(np.int64)
        chunk_min_tag = np.full(n_comp, _NO_TAG, dtype=np.int64)
        np.minimum.at(chunk_min_tag, chunk_inv, tags)

        # attach components to persistent groups through their ring members
        comp_group = np.full(n_comp, -1, dtype=np.intp)
        ring_roots = forest.dsu.find_many(self._ring_group)
        for c, g in zip(comp_inv[:n_r].tolist(), ring_roots.tolist()):
            have = comp_group[c]
            if have < 0:
                comp_group[c] = g
            elif have != g:
                comp_group[c] = forest.union(int(have), g)

        # fresh groups for chunk-only components
        new_comps = np.flatnonzero((comp_group < 0) & (chunk_counts > 0))
        if len(new_comps):
            comp_group[new_comps] = forest.new_groups(len(new_comps))

        # fold this chunk's members into their groups (roots may repeat
        # across components — two ring members of one group can sit in
        # different resident components once their link bridge retired)
        has_chunk = chunk_counts > 0
        if has_chunk.any():
            forest.fold(
                forest.dsu.find_many(comp_group[has_chunk]),
                chunk_counts[has_chunk],
                chunk_min_tag[has_chunk],
            )

        # advance the frontier, then re-filter the ring: tail slab
        # (directly linkable to the future) + head slab (periodic wrap)
        self._frontier = max(self._frontier, float(x.max()))
        resident_x = resident_pos[:, 0]
        keep = (resident_x >= self._frontier - ll) | (resident_x <= ll)
        resident_group = np.concatenate([self._ring_group, comp_group[chunk_inv]])
        resident_group = forest.dsu.find_many(resident_group)
        self._ring_pos = resident_pos[keep].copy()
        kept_groups = resident_group[keep]

        # retire groups with no ring member: no future particle can join
        active = np.unique(kept_groups)
        retired = np.setdiff1d(forest.roots(), active, assume_unique=True)
        if retired.size:
            self._emit(forest.min_tags[retired], forest.counts[retired])
        old_roots = forest.compact(active)
        self._ring_group = np.searchsorted(old_roots, kept_groups)
        self.n_particles += n_c

    def _emit(self, tags: np.ndarray, counts: np.ndarray) -> None:
        """Record one retirement batch (halos only, sorted by tag)."""
        order = np.argsort(tags, kind="stable")
        tags = tags[order]
        counts = counts[order]
        halo = counts >= self.min_count
        tags, counts = tags[halo], counts[halo]
        if not len(tags):
            return
        self._tags_seen.append(tags)
        self._counts_seen.append(counts)
        if self.on_retire is not None:
            self.on_retire(tags, counts)

    def finalize(self) -> StreamedCatalog:
        """Retire everything still active and return the catalog."""
        if not self._closed:
            forest = self._forest
            remaining = forest.roots()
            if remaining.size:
                self._emit(forest.min_tags[remaining], forest.counts[remaining])
            forest.compact(np.empty(0, dtype=np.intp))
            self._ring_pos = np.empty((0, 3), dtype=np.float64)
            self._ring_group = np.empty(0, dtype=np.intp)
            self._closed = True
        if self._tags_seen:
            tags = np.concatenate(self._tags_seen)
            counts = np.concatenate(self._counts_seen)
            order = np.argsort(tags, kind="stable")
            tags, counts = tags[order], counts[order]
        else:
            tags = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        return StreamedCatalog(
            halo_tags=tags,
            halo_counts=counts,
            min_count=self.min_count,
            n_particles=self.n_particles,
        )
