"""The one-pass streaming analysis engine: drive a stream through
incremental FOF and the fixed-size accumulators.

One pass over any :class:`~repro.streaming.stream.ParticleStream`:

* chunks are (optionally) prefetched on a worker thread so chunk
  *i+1*'s IO and CRC overlap chunk *i*'s linking;
* :class:`~repro.streaming.fof.StreamingFOF` links each chunk and
  retires finished groups;
* retirement batches fold into the mass-function and heavy-hitter
  accumulators; chunks deposit into the power-spectrum mesh;
* ``stream_*`` counters/histograms and a peak-RSS gauge flow through
  :mod:`repro.obs` (one :func:`~repro.obs.sample_memory` call per
  chunk).

Resident state is O(chunk + ring + active groups + accumulators) — the
engine never holds two full chunks beyond the prefetch window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.fof import DEFAULT_MIN_COUNT
from ..analysis.mass_function import MassFunction
from ..analysis.power_spectrum import PowerSpectrumResult
from ..obs import get_recorder, sample_memory, timed
from .accumulators import MisraGries, StreamingMassFunction, StreamingPowerSpectrum
from .fof import StreamedCatalog, StreamingFOF
from .prefetch import PrefetchStream
from .stream import ParticleStream

__all__ = ["StreamingAnalysis", "StreamingResult"]


@dataclass(frozen=True)
class StreamingResult:
    """Everything one pass produced."""

    catalog: StreamedCatalog
    mass_function: MassFunction | None
    power_spectrum: PowerSpectrumResult | None
    heavy_hitters: list[tuple[int, int]] | None
    n_chunks: int
    n_particles: int
    peak_resident_particles: int
    peak_rss_bytes: int


class StreamingAnalysis:
    """Configured one-pass analysis: FOF catalog + chosen accumulators.

    Parameters
    ----------
    linking_length:
        Absolute FOF linking length (box units).
    min_count:
        Discard halos below this many particles (paper production: 40).
    mass_function_bins:
        ``(lo, hi, n_bins)`` for the one-pass mass function, or ``None``
        to skip it.  Fixed explicit edges are required one-pass; pass
        the same triple to the in-memory comparison for bit-identity.
    power_spectrum_ng:
        CIC/FFT mesh size for the one-pass P(k), or ``None`` to skip.
    heavy_hitter_k:
        Counter budget for the Misra–Gries halo-mass sketch, or ``None``
        to skip.
    prefetch_depth:
        Read-ahead window (chunks) for the background prefetcher;
        ``0`` disables prefetching (pure synchronous pass).
    """

    def __init__(
        self,
        linking_length: float,
        min_count: int = DEFAULT_MIN_COUNT,
        mass_function_bins: tuple[float, float, int] | None = None,
        power_spectrum_ng: int | None = None,
        heavy_hitter_k: int | None = None,
        prefetch_depth: int = 1,
    ):
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.linking_length = float(linking_length)
        self.min_count = int(min_count)
        self.mass_function_bins = mass_function_bins
        self.power_spectrum_ng = power_spectrum_ng
        self.heavy_hitter_k = heavy_hitter_k
        self.prefetch_depth = int(prefetch_depth)

    def run(self, stream: ParticleStream) -> StreamingResult:
        """One pass over ``stream``; returns the full result bundle."""
        box = stream.box
        mf = (
            StreamingMassFunction(*self.mass_function_bins)
            if self.mass_function_bins is not None
            else None
        )
        mg = MisraGries(self.heavy_hitter_k) if self.heavy_hitter_k else None
        ps = (
            StreamingPowerSpectrum(box, self.power_spectrum_ng)
            if self.power_spectrum_ng
            else None
        )
        rec = get_recorder()

        def on_retire(tags: np.ndarray, counts: np.ndarray) -> None:
            rec.counter("stream_halos_retired_total").inc(len(tags))
            if mf is not None:
                mf.update(counts)
            if mg is not None:
                mg.update(tags, counts)

        fof = StreamingFOF(
            box,
            self.linking_length,
            min_count=self.min_count,
            on_retire=on_retire,
        )
        source: ParticleStream = (
            PrefetchStream(stream, depth=self.prefetch_depth)
            if self.prefetch_depth
            else stream
        )
        peak_rss = 0
        with rec.span(
            "stream.run",
            box=box,
            chunk_rows=stream.chunk_rows,
            prefetch=self.prefetch_depth,
        ):
            for chunk in source:
                pos, tags = chunk["pos"], chunk["tag"]
                with rec.span("stream.chunk", index=fof.n_chunks, rows=len(tags)):
                    with timed(
                        "stream_link_seconds", help="per-chunk incremental FOF"
                    ):
                        fof.ingest(pos, tags)
                    if ps is not None:
                        with timed(
                            "stream_deposit_seconds", help="per-chunk CIC deposit"
                        ):
                            ps.update(pos)
                rec.counter("stream_chunks_total").inc()
                rec.counter("stream_particles_total").inc(len(tags))
                rec.gauge("stream_ring_particles").set(fof.ring_size)
                rec.gauge("stream_active_groups").set(fof.active_groups)
                peak_rss = sample_memory()
            with rec.span("stream.finalize"):
                catalog = fof.finalize()
                peak_rss = sample_memory()
        return StreamingResult(
            catalog=catalog,
            mass_function=mf.finalize() if mf is not None else None,
            power_spectrum=ps.finalize() if ps is not None and ps.n_particles else None,
            heavy_hitters=mg.top() if mg is not None else None,
            n_chunks=fof.n_chunks,
            n_particles=fof.n_particles,
            peak_resident_particles=fof.peak_resident,
            peak_rss_bytes=peak_rss,
        )
