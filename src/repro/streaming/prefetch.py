"""Double-buffered chunk prefetch: overlap chunk *i+1*'s IO with *i*'s linking.

The same single-worker idiom as
:class:`~repro.insitu.pipeline.AsyncInSituManager`: one dedicated thread
keeps a bounded window of read-ahead futures, so the consumer's linking
work for chunk *i* overlaps the worker's read + CRC of chunk *i+1*.
A window of ``depth`` chunks bounds memory to ``depth + 1`` chunks
regardless of how far the reader could run ahead; chunk order — and
therefore every downstream result — is unchanged because a single
worker drains the underlying iterator sequentially.

Reader-side exceptions (torn files, exhausted retries) surface in the
consumer at the position where the chunk would have been yielded, which
keeps the fault-injection recovery semantics of the plain stream.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator

from ..obs import get_recorder, timed
from .stream import Chunk, ParticleStream

__all__ = ["PrefetchStream"]

#: Unique end-of-stream marker shipped through the future window.
_DONE = object()


class PrefetchStream:
    """Wrap any :class:`ParticleStream` with background read-ahead.

    Presents the same stream protocol (``box``, ``chunk_rows``,
    ``n_total``, iteration) so the engine treats prefetched and plain
    sources identically.  Each ``__iter__`` call owns a fresh worker and
    window, so the wrapper stays re-iterable when the source is.
    """

    def __init__(self, stream: ParticleStream, depth: int = 1):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.stream = stream
        self.depth = int(depth)
        self.box = stream.box
        self.chunk_rows = stream.chunk_rows

    @property
    def n_total(self) -> int | None:
        return self.stream.n_total

    def __iter__(self) -> Iterator[Chunk]:
        rec = get_recorder()
        trace = rec.trace_context()
        source = iter(self.stream)

        def pull() -> object:
            # worker spans (io.read_block, stream.read retries) parent
            # under the submitting step, on the worker's timeline lane
            worker_rec = get_recorder()
            worker_rec.bind_thread(trace)
            try:
                return next(source)
            except StopIteration:
                return _DONE

        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="stream-prefetch"
        )
        window: deque = deque()
        try:
            for _ in range(self.depth):
                window.append(executor.submit(pull))
            rec.gauge("stream_prefetch_depth").set(self.depth)
            while True:
                with timed(
                    "stream_prefetch_wait_seconds",
                    help="consumer stall waiting on the prefetch worker",
                ):
                    item = window.popleft().result()
                if item is _DONE:
                    break
                rec.counter("stream_prefetch_chunks_total").inc()
                window.append(executor.submit(pull))
                yield item  # type: ignore[misc]
        finally:
            # cancel what never started, wait out the in-flight read
            while window:
                window.popleft().cancel()
            executor.shutdown(wait=True)
