"""One-pass accumulators: fold each chunk into fixed-size state.

The sketch half of the arXiv:1711.00975 blueprint.  Each accumulator
consumes retirement batches (mass function, heavy hitters) or raw chunks
(power spectrum) and holds O(bins + k + ng³) state independent of the
stream length.

Exactness:

* :class:`StreamingMassFunction` — bit-identical to
  :func:`~repro.analysis.mass_function.mass_function` called with the
  same explicit ``(lo, hi, n_bins)``: integer histogram counts over a
  shared fixed edge array (:func:`~repro.analysis.mass_function.log_bin_edges`)
  are additive across batches.
* :class:`MisraGries` — the deterministic weighted heavy-hitter sketch:
  any halo whose mass exceeds ``total_weight / (k + 1)`` is guaranteed
  present, and estimates undercount by at most that same bound.
* :class:`StreamingPowerSpectrum` — folds *raw* CIC mass per chunk and
  normalizes once at the end, then reuses the in-memory FFT/binning
  path verbatim.  Bit-identical to the one-shot measurement of the
  slab-sorted particles for a single chunk (same op sequence); across
  chunks (or versus unsorted input) the per-cell deposit order differs,
  so agreement is to float addition reordering (~1e-12 relative), which
  the tests pin down.
"""

from __future__ import annotations

import numpy as np

from ..analysis.mass_function import MassFunction, log_bin_edges
from ..analysis.power_spectrum import PowerSpectrumResult, power_spectrum_from_delta
from ..sim.pm import cic_deposit

__all__ = ["StreamingMassFunction", "MisraGries", "StreamingPowerSpectrum"]


class StreamingMassFunction:
    """Fold retired halo counts into a fixed log-binned histogram.

    The in-memory comparison point must use the same explicit
    ``(lo, hi, n_bins)`` — data-dependent default edges cannot be known
    one-pass.
    """

    def __init__(self, lo: float, hi: float, n_bins: int = 32):
        self.bin_edges = log_bin_edges(lo, hi, n_bins)
        self.counts = np.zeros(n_bins, dtype=np.int64)
        self.n_halos = 0

    def update(self, halo_counts: np.ndarray) -> None:
        """Fold one batch of halo sizes (particle counts)."""
        batch = np.asarray(halo_counts, dtype=float)
        if batch.size == 0:
            return
        hist, _ = np.histogram(batch, bins=self.bin_edges)
        self.counts += hist.astype(np.int64)
        self.n_halos += int(batch.size)

    def finalize(self) -> MassFunction:
        return MassFunction(bin_edges=self.bin_edges.copy(), counts=self.counts.copy())


class MisraGries:
    """Deterministic weighted Misra–Gries heavy-hitter sketch.

    Tracks at most ``k`` ``key -> weight`` counters; offering a new key
    when full decrements every counter by the overflow (evicting zeros)
    until room appears.  For total offered weight ``W``, every key with
    true weight ``> W / (k + 1)`` survives, and surviving estimates
    undercount true weight by at most ``W / (k + 1)``.  Fully
    deterministic given offer order — the streaming finder retires in a
    deterministic order, so two runs produce the same sketch.
    """

    def __init__(self, k: int = 32):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self._items: dict[int, int] = {}
        self.total_weight = 0

    def update(self, keys: np.ndarray, weights: np.ndarray) -> None:
        """Offer a batch of ``(key, weight)`` pairs in order."""
        for key, w in zip(
            np.asarray(keys, dtype=np.int64).tolist(),
            np.asarray(weights, dtype=np.int64).tolist(),
        ):
            self.offer(int(key), int(w))

    def offer(self, key: int, weight: int) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.total_weight += weight
        items = self._items
        w = weight
        while w > 0:
            if key in items:
                items[key] += w
                return
            if len(items) < self.k:
                items[key] = w
                return
            d = min(min(items.values()), w)
            for kk in list(items):
                v = items[kk] - d
                if v:
                    items[kk] = v
                else:
                    del items[kk]
            w -= d

    @property
    def error_bound(self) -> float:
        """Maximum undercount of any surviving estimate."""
        return self.total_weight / (self.k + 1)

    def estimate(self, key: int) -> int:
        """Lower-bound weight estimate (0 if the key was evicted)."""
        return self._items.get(int(key), 0)

    def top(self, n: int | None = None) -> list[tuple[int, int]]:
        """``(key, estimate)`` pairs, heaviest first (ties by key)."""
        ranked = sorted(self._items.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked if n is None else ranked[:n]


class StreamingPowerSpectrum:
    """Fold raw CIC mass per chunk; FFT and bin once at the end."""

    def __init__(
        self,
        box: float,
        ng: int,
        n_bins: int | None = None,
        deconvolve_cic: bool = True,
        subtract_shot_noise: bool = True,
    ):
        if box <= 0:
            raise ValueError("box must be positive")
        if ng < 2:
            raise ValueError("ng must be >= 2")
        self.box = float(box)
        self.ng = int(ng)
        self.n_bins = n_bins
        self.deconvolve_cic = deconvolve_cic
        self.subtract_shot_noise = subtract_shot_noise
        self.rho = np.zeros((ng, ng, ng), dtype=np.float64)
        self._weight_sum = 0.0
        self.n_particles = 0

    def update(self, pos: np.ndarray) -> None:
        """Deposit one chunk's mass onto the accumulated mesh."""
        pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
        if len(pos) == 0:
            return
        self.rho += cic_deposit(pos / (self.box / self.ng), self.ng, normalize=False)
        # mirror the in-memory normalization exactly: w.sum() of unit
        # weights, accumulated chunk by chunk (exact for n < 2**53)
        self._weight_sum += float(np.ones(len(pos)).sum())
        self.n_particles += len(pos)

    def finalize(self) -> PowerSpectrumResult:
        if self.n_particles == 0:
            raise ValueError("no particles")
        # same op sequence as cic_deposit(normalize=True): /= mean, -= 1
        delta = self.rho.copy()
        delta /= self._weight_sum / self.ng**3
        delta -= 1.0
        return power_spectrum_from_delta(
            delta,
            self.box,
            self.ng,
            self.n_particles,
            n_bins=self.n_bins,
            deconvolve_cic=self.deconvolve_cic,
            subtract_shot_noise=self.subtract_shot_noise,
        )
