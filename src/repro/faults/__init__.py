"""repro.faults — deterministic fault injection and resilience.

The failure model for the whole combined workflow (see
``docs/failures.md`` and ``ARCHITECTURE.md``):

* **Injection** — a seeded :class:`FaultPlan` decides, reproducibly
  from a single seed, whether any attempt at a named workflow hop
  (listener submit, staging/storage transfer, GenericIO read/write,
  scheduler payload, exec work item) fails or stalls.  Off by default;
  enable per-run with :func:`fault_plan` / :func:`set_fault_plan`, or
  process-wide with ``REPRO_FAULTS=<plan.json>``.
* **Resilience** — one shared :class:`RetryPolicy` (capped exponential
  backoff, deterministic seeded jitter, per-attempt timeout) applied at
  every retryable hop; scheduler job deadlines with requeue-or-fail;
  exec-engine item retry with poison quarantine; graceful degradation
  in :func:`repro.core.run_combined_workflow` (``degraded=True`` +
  in-situ-only catalog instead of raising).
* **Accounting** — bounded :class:`DeadLetterBox` lists for terminal
  failures, plus ``faults_injected_total`` / ``retries_total`` /
  ``dead_letter_total`` counters, ``retry.attempt`` spans, and the
  failure section of :class:`repro.obs.RunTelemetry`.

Quick use::

    from repro.faults import FaultPlan, FaultSpec, RetryPolicy, fault_plan

    plan = FaultPlan(seed=7, sites={
        "listener.submit": FaultSpec(fail_first=1),        # transient
        "offline.job": FaultSpec(probability=0.10),        # flaky
    })
    with fault_plan(plan):
        result = run_combined_workflow(..., retry=RetryPolicy(max_attempts=4))
    print(result.degraded, result.failures, plan.snapshot())
"""

from .deadletter import DEAD_LETTER_LIMIT, DeadLetterBox, DeadLetterEntry
from .plan import (
    KNOWN_SITES,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_plan,
    get_fault_plan,
    load_plan,
    maybe_inject,
    reset_fault_plan,
    seeded_uniform,
    set_fault_plan,
)
from .retry import RetryError, RetryOutcome, RetryPolicy, default_retry, resolve_retry

__all__ = [
    "DEAD_LETTER_LIMIT",
    "DeadLetterBox",
    "DeadLetterEntry",
    "KNOWN_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryError",
    "RetryOutcome",
    "RetryPolicy",
    "default_retry",
    "fault_plan",
    "get_fault_plan",
    "load_plan",
    "maybe_inject",
    "reset_fault_plan",
    "resolve_retry",
    "seeded_uniform",
    "set_fault_plan",
]
