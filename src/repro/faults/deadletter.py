"""Bounded dead-letter lists for work that exhausted its retries.

The workflow's terminal-failure sink: jobs the scheduler gave up on,
poison work items the exec engine quarantined, off-line steps the
combined driver completed without.  Every producer uses the same
bounded :class:`DeadLetterBox`, so queue growth is capped the same way
:data:`repro.machines.listener.BACKLOG_HISTORY_LIMIT` already caps the
listener's backlog history: the *entries* window is a deque of the most
recent :data:`DEAD_LETTER_LIMIT` records, while the running ``total``
covers the whole run — accounting stays exact after old entries age
out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["DEAD_LETTER_LIMIT", "DeadLetterBox", "DeadLetterEntry"]

#: Cap on retained dead-letter entries per box (long co-scheduling
#: campaigns run forever; an unbounded failure list is a leak).  The
#: ``total`` counter keeps the exact whole-run count regardless.
DEAD_LETTER_LIMIT = 256


@dataclass(frozen=True)
class DeadLetterEntry:
    """One terminally-failed unit of work."""

    source: str  # "scheduler" | "exec" | "workflow" | ...
    key: str  # job name / item id / step
    reason: str
    attempts: int = 1
    sim_time: float | None = None
    #: run id of the workflow that dead-lettered this entry (stamped
    #: from the active recorder, so two runs sharing one box stay apart)
    run: str | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "source": self.source,
            "key": self.key,
            "reason": self.reason,
            "attempts": self.attempts,
        }
        if self.sim_time is not None:
            out["sim_time"] = self.sim_time
        if self.run is not None:
            out["run"] = self.run
        out.update(self.fields)
        return out


class DeadLetterBox:
    """Bounded FIFO of :class:`DeadLetterEntry` with exact totals.

    ``entries()`` exposes the most recent :attr:`limit` records;
    :attr:`total` counts every record ever added (the watermark the
    ``*_dead_letter_total`` counters mirror).
    """

    def __init__(self, source: str, limit: int = DEAD_LETTER_LIMIT) -> None:
        self.source = source
        self.limit = int(limit)
        self._entries: deque[DeadLetterEntry] = deque(maxlen=self.limit)
        self.total = 0

    def add(
        self,
        key: Any,
        reason: str,
        attempts: int = 1,
        sim_time: float | None = None,
        **fields: Any,
    ) -> DeadLetterEntry:
        """Record a terminal failure; emits counters + an error event."""
        from ..obs import get_recorder

        rec = get_recorder()
        entry = DeadLetterEntry(
            source=self.source,
            key=str(key),
            reason=reason,
            attempts=attempts,
            sim_time=sim_time,
            run=rec.run_id,
            fields=fields,
        )
        self._entries.append(entry)
        self.total += 1
        rec.counter(
            "dead_letter_total", help="work units that exhausted retries (all sources)"
        ).inc()
        rec.counter(f"{self.source}_dead_letter_total").inc()
        rec.event(
            "dead_letter",
            level="error",
            source=self.source,
            key=entry.key,
            reason=reason,
            attempts=attempts,
        )
        return entry

    def entries(self, run: str | None = None) -> list[DeadLetterEntry]:
        """The retained (most recent) entries, oldest first.

        ``run`` filters to one workflow's failures when several runs
        share the box (e.g. two drivers over one engine).
        """
        if run is None:
            return list(self._entries)
        return [e for e in self._entries if e.run == run]

    def keys(self) -> list[str]:
        return [e.key for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return self.total > 0
