"""Deterministic fault injection: the seeded :class:`FaultPlan`.

The paper's co-scheduled workflow only earns its keep if the science
pipeline keeps moving when individual hops misbehave — a submit is
rejected by the batch system, a staging transfer stalls, an analysis
job overruns its allocation, a worker node dies mid-item.  This module
makes all of those failures *first-class and reproducible*: a
:class:`FaultPlan` names injection **sites** (one per workflow hop) and
decides, deterministically from a single seed, whether any given
attempt at a site fails.

Design rules:

* **Off by default.**  With no plan installed (and ``REPRO_FAULTS``
  unset) every injection point is one ``None`` check — the same
  "minimally intrusive" contract as :mod:`repro.obs`.
* **Bit-reproducible.**  Probability decisions are *hash-based*, not
  stream-based: the verdict for ``(site, key, attempt)`` is a pure
  function of the plan seed, independent of call order, thread
  interleaving, or how many other sites fired first.  Two runs with the
  same plan inject the same faults at the same keys.
* **Retry-aware.**  Attempts at the same ``(site, key)`` are counted,
  so ``fail_first=N`` expresses "the first N tries fail, then it
  works" — the canonical transient fault a
  :class:`~repro.faults.retry.RetryPolicy` must absorb.

Injection sites wired through the tree (see ``docs/failures.md``):

=====================  ======================================================
Site                   Hop
=====================  ======================================================
``listener.submit``    :meth:`repro.machines.listener.Listener.poll_once`
``offline.job``        the off-line analysis job body (workflow driver)
``scheduler.payload``  :class:`repro.machines.scheduler.Job` payload execution
``staging.put``        :meth:`repro.machines.staging.StagingArea.put`
``staging.get``        ``StagingArea.get`` / ``wait_for``
``storage.write``      :meth:`repro.machines.storage.StorageDevice.write_seconds`
``storage.read``       ``StorageDevice.read_seconds``
``io.write``           :func:`repro.io.genericio.write_genericio`
``io.read``            :meth:`repro.io.genericio.GenericIOFile.read_block`
``stream.read``        one chunk hand-off in a :mod:`repro.streaming` stream
``exec.item``          one work item inside a :mod:`repro.exec` worker
``service.job``        one campaign-service payload attempt
                       (:meth:`repro.service.worker.ServiceWorker.run_job`)
=====================  ======================================================
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KNOWN_SITES",
    "fault_plan",
    "get_fault_plan",
    "load_plan",
    "maybe_inject",
    "reset_fault_plan",
    "seeded_uniform",
    "set_fault_plan",
]

#: Every injection site wired through the tree (documentation + validation).
KNOWN_SITES: tuple[str, ...] = (
    "listener.submit",
    "offline.job",
    "scheduler.payload",
    "staging.put",
    "staging.get",
    "storage.write",
    "storage.read",
    "io.write",
    "io.read",
    "stream.read",
    "exec.item",
    "service.job",
)


class FaultInjected(RuntimeError):
    """An injected (synthetic) fault — raised at an injection site."""

    def __init__(self, site: str, key: str, attempt: int) -> None:
        super().__init__(f"injected fault at {site} (key={key!r}, attempt={attempt})")
        self.site = site
        self.key = key
        self.attempt = attempt


@dataclass(frozen=True)
class InjectedFault:
    """One positive injection verdict (what :meth:`FaultPlan.should_fail` returns)."""

    site: str
    key: str
    attempt: int
    mode: str  # "error" | "stall"
    stall_seconds: float


def seeded_uniform(seed: int, site: str, key: str, attempt: int) -> float:
    """Deterministic uniform in ``[0, 1)`` for one injection decision.

    A pure function of its arguments (SHA-256 of the tuple), so the
    verdict does not depend on how many other decisions were drawn
    before it — the property that makes probability-mode plans
    bit-reproducible across interleavings.
    """
    digest = hashlib.sha256(f"{seed}|{site}|{key}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """Failure behaviour of one injection site.

    Parameters
    ----------
    probability:
        Each attempt fails independently with this probability
        (hash-based, see :func:`seeded_uniform`).
    fail_first:
        The first N attempts for each distinct key fail
        deterministically (transient fault; a retry then succeeds).
    always:
        Every attempt fails — a permanent outage (the degraded-mode
        drill).
    keys:
        Restrict the spec to these keys (stringified); empty = all keys.
    mode:
        ``"error"`` raises :class:`FaultInjected`; ``"stall"`` sleeps
        ``stall_seconds`` and then lets the attempt proceed (a slow hop,
        which per-attempt timeouts / staging waits turn into failures).
    stall_seconds:
        Stall duration for ``mode="stall"``.
    max_total:
        Cap on total injections at this site (``None`` = unbounded).
    """

    probability: float = 0.0
    fail_first: int = 0
    always: bool = False
    keys: tuple[str, ...] = ()
    mode: str = "error"
    stall_seconds: float = 0.02
    max_total: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.fail_first < 0:
            raise ValueError("fail_first must be >= 0")
        if self.mode not in ("error", "stall"):
            raise ValueError(f"mode must be 'error' or 'stall', got {self.mode!r}")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        if self.max_total is not None and self.max_total < 0:
            raise ValueError("max_total must be >= 0")
        # normalize keys to strings (JSON plans carry ints)
        object.__setattr__(self, "keys", tuple(str(k) for k in self.keys))

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.probability:
            out["probability"] = self.probability
        if self.fail_first:
            out["fail_first"] = self.fail_first
        if self.always:
            out["always"] = True
        if self.keys:
            out["keys"] = list(self.keys)
        if self.mode != "error":
            out["mode"] = self.mode
            out["stall_seconds"] = self.stall_seconds
        if self.max_total is not None:
            out["max_total"] = self.max_total
        return out

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultSpec":
        return cls(
            probability=float(d.get("probability", 0.0)),
            fail_first=int(d.get("fail_first", 0)),
            always=bool(d.get("always", False)),
            keys=tuple(d.get("keys", ())),
            mode=str(d.get("mode", "error")),
            stall_seconds=float(d.get("stall_seconds", 0.02)),
            max_total=d.get("max_total"),
        )


@dataclass
class FaultPlan:
    """A seeded, per-site fault schedule.

    The plan is *stateful* (it counts attempts per ``(site, key)`` and
    injections per site) but every verdict is reproducible: call
    :meth:`reset` between runs, or build a fresh plan from the same
    spec, and the same faults fire at the same keys.
    """

    seed: int = 0
    sites: dict[str, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._attempts: dict[tuple[str, str], int] = {}
        self._site_calls: dict[str, int] = {}
        self.injected: dict[str, int] = {}

    # -- verdicts --------------------------------------------------------------

    def should_fail(self, site: str, key: Any = None) -> InjectedFault | None:
        """Decide whether this attempt at ``site`` (for ``key``) fails."""
        spec = self.sites.get(site)
        if spec is None:
            return None
        with self._lock:
            if key is None:
                # sequence mode: every call at the site is its own key
                seq = self._site_calls.get(site, 0)
                self._site_calls[site] = seq + 1
                key_s = f"#{seq}"
            else:
                key_s = str(key)
            if spec.keys and key_s not in spec.keys:
                return None
            attempt = self._attempts.get((site, key_s), 0)
            self._attempts[(site, key_s)] = attempt + 1
            if spec.max_total is not None and self.injected.get(site, 0) >= spec.max_total:
                return None
            fail = (
                spec.always
                or attempt < spec.fail_first
                or (
                    spec.probability > 0.0
                    and seeded_uniform(self.seed, site, key_s, attempt) < spec.probability
                )
            )
            if not fail:
                return None
            self.injected[site] = self.injected.get(site, 0) + 1
        return InjectedFault(
            site=site,
            key=key_s,
            attempt=attempt,
            mode=spec.mode,
            stall_seconds=spec.stall_seconds,
        )

    # -- state -----------------------------------------------------------------

    def reset(self) -> None:
        """Forget attempt/injection state (run-twice determinism helper)."""
        with self._lock:
            self._attempts.clear()
            self._site_calls.clear()
            self.injected.clear()

    def snapshot(self) -> dict[str, int]:
        """Injections so far, per site (sorted; the accounting view)."""
        with self._lock:
            return dict(sorted(self.injected.items()))

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def fresh(self) -> "FaultPlan":
        """A stateless copy with the same seed and specs (same verdicts)."""
        return FaultPlan(seed=self.seed, sites=dict(self.sites))

    def with_site(self, site: str, **spec_kwargs: Any) -> "FaultPlan":
        """A copy (stateless) with one site's spec added or replaced."""
        sites = dict(self.sites)
        base = sites.get(site, FaultSpec())
        sites[site] = replace(base, **spec_kwargs)
        return FaultPlan(seed=self.seed, sites=sites)

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "sites": {s: spec.to_dict() for s, spec in sorted(self.sites.items())},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(d.get("seed", 0)),
            sites={
                str(s): FaultSpec.from_dict(spec or {})
                for s, spec in dict(d.get("sites", {})).items()
            },
        )

    def save(self, path: str | os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def load_plan(path: str | os.PathLike) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file (the ``REPRO_FAULTS`` format)."""
    with open(path, encoding="utf-8") as fh:
        return FaultPlan.from_dict(json.load(fh))


# -- process-wide active plan --------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ENV_CHECKED = False
_STATE_LOCK = threading.Lock()


def get_fault_plan() -> FaultPlan | None:
    """The active plan (``None`` = injection off, the default).

    On first call, ``REPRO_FAULTS=<path.json>`` auto-installs a plan
    from disk — the hook the CI ``faults`` job uses to exercise every
    retry path on every push without touching test code.
    """
    global _ENV_CHECKED, _ACTIVE
    if _ACTIVE is None and not _ENV_CHECKED:
        with _STATE_LOCK:
            if _ACTIVE is None and not _ENV_CHECKED:
                _ENV_CHECKED = True
                path = os.environ.get("REPRO_FAULTS", "").strip()
                if path:
                    _ACTIVE = load_plan(path)
    return _ACTIVE


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previous plan."""
    global _ACTIVE, _ENV_CHECKED
    with _STATE_LOCK:
        previous = _ACTIVE
        _ACTIVE = plan
        _ENV_CHECKED = True  # explicit set overrides the env hook
    return previous


def reset_fault_plan() -> None:
    """Drop any active plan and re-arm the ``REPRO_FAULTS`` env hook."""
    global _ACTIVE, _ENV_CHECKED
    with _STATE_LOCK:
        _ACTIVE = None
        _ENV_CHECKED = False


@contextlib.contextmanager
def fault_plan(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Scope a plan to a ``with`` block (restores the previous plan)."""
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def maybe_inject(site: str, key: Any = None) -> None:
    """The injection point: consult the active plan for this attempt.

    With no plan installed this is one ``None`` check.  With a plan, a
    negative verdict is free; a positive ``"error"`` verdict increments
    ``faults_injected_total``, emits a ``fault.injected`` event, and
    raises :class:`FaultInjected`; a ``"stall"`` verdict sleeps instead
    (the attempt then proceeds — slow, not broken).
    """
    plan = get_fault_plan()
    if plan is None:
        return
    fault = plan.should_fail(site, key)
    if fault is None:
        return
    from ..obs import get_recorder

    rec = get_recorder()
    rec.counter(
        "faults_injected_total", help="synthetic faults injected by the active FaultPlan"
    ).inc()
    rec.event(
        "fault.injected",
        level="warning",
        site=fault.site,
        key=fault.key,
        attempt=fault.attempt,
        mode=fault.mode,
    )
    if fault.mode == "stall":
        time.sleep(fault.stall_seconds)
        return
    raise FaultInjected(fault.site, fault.key, fault.attempt)
