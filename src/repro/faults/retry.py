"""The shared :class:`RetryPolicy`: capped exponential backoff with
deterministic seeded jitter.

One policy object serves every retryable hop in the workflow — listener
submits, stager transfers, GenericIO reads/writes, scheduler payloads —
so the backoff behaviour (and its knobs) is documented once and tested
once.  Three properties the test suite enforces:

* **Deterministic jitter.**  The jitter for attempt *k* of a keyed call
  is :func:`~repro.faults.plan.seeded_uniform`\\ ``(seed, "retry", key, k)``
  — a pure hash, so two runs back off identically.
* **Monotone, capped delays.**  ``delay(k) = min(base · mult^k ·
  (1 + jitter·u_k), max_delay)``.  With ``jitter ≤ mult − 1`` (enforced)
  the sequence is monotone non-decreasing and never exceeds
  ``max_delay`` (property-tested with hypothesis).
* **Last-error transparency.**  On exhaustion the *last real exception*
  is re-raised (so callers keep catching the types they already catch);
  :class:`RetryError` is raised only for per-attempt deadline
  violations, which have no underlying exception.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from .plan import seeded_uniform

__all__ = ["RetryError", "RetryOutcome", "RetryPolicy", "default_retry", "resolve_retry"]


class RetryError(RuntimeError):
    """All attempts failed (or an attempt exceeded its deadline)."""

    def __init__(self, message: str, attempts: int = 0, site: str = "") -> None:
        super().__init__(message)
        self.attempts = attempts
        self.site = site


@dataclass(frozen=True)
class RetryOutcome:
    """What one retried call did (:meth:`RetryPolicy.run`'s return)."""

    value: Any
    attempts: int  # total attempts made (1 = first try succeeded)
    total_delay: float  # seconds slept between attempts

    @property
    def retried(self) -> bool:
        return self.attempts > 1


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total tries, first included (``1`` disables retrying).
    base_delay, multiplier, max_delay:
        Backoff shape: attempt *k* (0-based) waits
        ``min(base_delay · multiplier^k · (1 + jitter·u_k), max_delay)``.
    jitter:
        Jitter amplitude as a fraction of the raw delay, drawn
        deterministically per ``(seed, key, attempt)``.  Must satisfy
        ``jitter ≤ multiplier − 1`` so delays stay monotone.
    seed:
        Jitter seed (same seed ⇒ same delays, run to run).
    attempt_timeout:
        Per-attempt deadline in seconds; an attempt that returns after
        longer counts as failed (``None`` disables).
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: int = 0
    attempt_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter <= self.multiplier - 1.0 + 1e-12:
            raise ValueError(
                f"jitter must be in [0, multiplier-1] = [0, {self.multiplier - 1.0}] "
                "to keep backoff delays monotone non-decreasing"
            )
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive")

    # -- backoff shape ---------------------------------------------------------

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff delay after 0-based ``attempt`` (deterministic)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        raw = self.base_delay * self.multiplier**attempt
        u = seeded_uniform(self.seed, "retry", key, attempt)
        return min(raw * (1.0 + self.jitter * u), self.max_delay)

    def delays(self, key: str = "") -> list[float]:
        """Every backoff delay this policy can sleep (``max_attempts - 1``)."""
        return [self.delay(k, key=key) for k in range(self.max_attempts - 1)]

    # -- execution -------------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        site: str = "retry",
        key: Any = "",
        retryable: tuple[type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] | None = None,
        **kwargs: Any,
    ) -> RetryOutcome:
        """Call ``fn`` under this policy; returns a :class:`RetryOutcome`.

        ``site``/``key`` label telemetry (``retry.attempt`` spans,
        ``retry.backoff`` events) and seed the jitter.  Only exceptions
        matching ``retryable`` are retried; anything else propagates
        immediately.  On exhaustion the last exception is re-raised
        (:class:`RetryError` if the failures were deadline violations).
        """
        from ..obs import get_recorder

        rec = get_recorder()
        do_sleep = time.sleep if sleep is None else sleep
        key_s = str(key)
        last: BaseException | None = None
        total_delay = 0.0
        for attempt in range(self.max_attempts):
            with rec.span("retry.attempt", site=site, key=key_s, attempt=attempt):
                t0 = time.monotonic()
                try:
                    value = fn(*args, **kwargs)
                except retryable as exc:
                    last = exc
                else:
                    elapsed = time.monotonic() - t0
                    if self.attempt_timeout is not None and elapsed > self.attempt_timeout:
                        last = RetryError(
                            f"{site} attempt {attempt} took {elapsed:.3f}s "
                            f"(> deadline {self.attempt_timeout}s)",
                            attempts=attempt + 1,
                            site=site,
                        )
                    else:
                        return RetryOutcome(
                            value=value, attempts=attempt + 1, total_delay=total_delay
                        )
            if attempt + 1 < self.max_attempts:
                d = self.delay(attempt, key=key_s)
                rec.counter(
                    "retries_total", help="retry attempts made after a failed first try"
                ).inc()
                rec.event(
                    "retry.backoff",
                    level="warning",
                    site=site,
                    key=key_s,
                    attempt=attempt,
                    delay=round(d, 6),
                    error=f"{type(last).__name__}: {last}",
                )
                total_delay += d
                if d > 0:
                    do_sleep(d)
        rec.counter(
            "retry_exhausted_total", help="retried calls that failed every attempt"
        ).inc()
        rec.event(
            "retry.exhausted",
            level="warning",
            site=site,
            key=key_s,
            attempts=self.max_attempts,
            error=f"{type(last).__name__}: {last}",
        )
        assert last is not None  # max_attempts >= 1 guarantees an attempt ran
        raise last

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        site: str = "retry",
        key: Any = "",
        retryable: tuple[type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] | None = None,
        **kwargs: Any,
    ) -> Any:
        """:meth:`run`, returning only the call's value."""
        return self.run(
            fn, *args, site=site, key=key, retryable=retryable, sleep=sleep, **kwargs
        ).value


#: The tree-wide default: 3 attempts, 5 ms → 20 ms backoff, 250 ms cap.
_DEFAULT = RetryPolicy()


def default_retry() -> RetryPolicy:
    """The shared default policy (what ``retry=None`` resolves to)."""
    return _DEFAULT


def resolve_retry(policy: RetryPolicy | None) -> RetryPolicy:
    """``None`` → the default policy; otherwise the given policy."""
    return _DEFAULT if policy is None else policy
