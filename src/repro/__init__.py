"""repro: combined in-situ and co-scheduling workflow framework.

A full reproduction of "Large-Scale Compute-Intensive Analysis via a
Combined In-Situ and Co-Scheduling Workflow Approach" (SC '15): a
mini-HACC cosmological N-body simulation, the CosmoTools in-situ
analysis framework, portable data-parallel analysis algorithms
(FOF halo finding, MBP center finding, subhalos, spherical-overdensity
masses, power spectra), a simulated facility layer (Titan / Rhea /
Moonlight, batch scheduler, co-scheduling listener), and the workflow
strategies the paper compares.

Quick start::

    from repro.core import run_combined_workflow
    from repro.sim import SimulationConfig

    result = run_combined_workflow(
        SimulationConfig(np_per_dim=24, box=48.0, n_steps=20),
        spool_dir="/tmp/spool", threshold=500,
    )
    print(len(result.catalog), "halo centers")

Subpackages
-----------
``repro.sim``          mini-HACC N-body simulation (Level 1 producer)
``repro.dataparallel`` PISTON-style portable primitives (serial/vector)
``repro.parallel``     in-process SPMD substrate (MPI stand-in)
``repro.analysis``     halo analysis algorithms
``repro.insitu``       CosmoTools framework (InSituAlgorithm/Manager)
``repro.io``           GenericIO-style files, data levels, catalogs
``repro.machines``     facility simulation (cost model, scheduler, listener)
``repro.core``         the combined workflow engine (the contribution)
``repro.obs``          unified telemetry (events, spans, metrics, reports)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "dataparallel",
    "insitu",
    "io",
    "machines",
    "obs",
    "parallel",
    "sim",
]
