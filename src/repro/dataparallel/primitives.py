"""Data-parallel primitives in the style of Thrust / PISTON.

Every primitive is written once against the :class:`~repro.dataparallel.backends.Backend`
interface and therefore runs unchanged on the ``serial`` and ``vector``
backends.  This mirrors the paper's portability claim: a single
implementation of, e.g., the most-bound-particle center finder targets
GPUs, multi-core, and many-core architectures through Thrust.

All primitives accept an optional ``backend=`` keyword (a name or a
:class:`Backend` instance).  When omitted the thread-local default set by
:func:`repro.dataparallel.backends.set_default_backend` is used.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .backends import Backend, get_backend

__all__ = [
    "map_",
    "reduce_",
    "inclusive_scan",
    "exclusive_scan",
    "sort_by_key",
    "reduce_by_key",
    "gather",
    "scatter",
    "unique",
    "count_if",
    "partition",
    "compact",
    "minloc",
    "segmented_minloc",
    "zip_arrays",
]


def map_(fn: Callable, *arrays: np.ndarray, backend: str | Backend | None = None) -> np.ndarray:
    """Elementwise ``fn`` over equally-sized arrays (Thrust ``transform``)."""
    return get_backend(backend).map(fn, *arrays)


def reduce_(
    array: np.ndarray,
    op: Callable[[Any, Any], Any] = np.add,
    init: Any = 0,
    backend: str | Backend | None = None,
) -> Any:
    """Fold ``array`` with associative ``op`` (Thrust ``reduce``)."""
    return get_backend(backend).reduce(np.asarray(array), op, init)


def inclusive_scan(
    array: np.ndarray,
    op: Callable[[Any, Any], Any] = np.add,
    init: Any = 0,
    backend: str | Backend | None = None,
) -> np.ndarray:
    """Inclusive prefix scan (Thrust ``inclusive_scan``)."""
    return get_backend(backend).scan(np.asarray(array), op, exclusive=False, init=init)


def exclusive_scan(
    array: np.ndarray,
    op: Callable[[Any, Any], Any] = np.add,
    init: Any = 0,
    backend: str | Backend | None = None,
) -> np.ndarray:
    """Exclusive prefix scan (Thrust ``exclusive_scan``)."""
    return get_backend(backend).scan(np.asarray(array), op, exclusive=True, init=init)


def sort_by_key(
    keys: np.ndarray, *values: np.ndarray, backend: str | Backend | None = None
) -> tuple[np.ndarray, ...]:
    """Stable key/value sort (Thrust ``sort_by_key``).

    Returns ``(sorted_keys, sorted_value_0, ...)``.
    """
    return get_backend(backend).sort_by_key(np.asarray(keys), *values)


def reduce_by_key(
    keys: np.ndarray,
    values: np.ndarray,
    op: str = "sum",
    *,
    presorted: bool = False,
    backend: str | Backend | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Segmented reduction over equal keys (Thrust ``reduce_by_key``).

    Unlike Thrust, keys need not be presorted unless ``presorted=True``
    (sorting is performed internally otherwise).
    """
    be = get_backend(backend)
    keys = np.asarray(keys)
    values = np.asarray(values)
    if not presorted:
        keys, values = be.sort_by_key(keys, values)
    return be.reduce_by_key(keys, values, op)


def gather(
    indices: np.ndarray, source: np.ndarray, backend: str | Backend | None = None
) -> np.ndarray:
    """``source[indices]`` (Thrust ``gather``)."""
    return get_backend(backend).gather(np.asarray(indices), np.asarray(source))


def scatter(
    values: np.ndarray,
    indices: np.ndarray,
    out: np.ndarray,
    backend: str | Backend | None = None,
) -> np.ndarray:
    """Write ``values`` to ``out[indices]`` in place (Thrust ``scatter``)."""
    return get_backend(backend).scatter(np.asarray(values), np.asarray(indices), out)


def unique(keys: np.ndarray, backend: str | Backend | None = None) -> np.ndarray:
    """Unique values of ``keys`` in ascending order."""
    be = get_backend(backend)
    keys = np.asarray(keys)
    if keys.size == 0:
        return keys
    (sorted_keys,) = be.sort_by_key(keys)
    uk, _ = be.reduce_by_key(sorted_keys, np.ones(len(sorted_keys), dtype=np.intp), "count")
    return uk


def count_if(
    array: np.ndarray, predicate: Callable, backend: str | Backend | None = None
) -> int:
    """Number of elements satisfying ``predicate`` (Thrust ``count_if``)."""
    be = get_backend(backend)
    flags = be.map(predicate, np.asarray(array))
    return int(be.reduce(np.asarray(flags, dtype=np.intp), np.add, 0))


def partition(
    array: np.ndarray, predicate: Callable, backend: str | Backend | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Stable partition into (satisfying, not-satisfying) halves."""
    be = get_backend(backend)
    array = np.asarray(array)
    flags = np.asarray(be.map(predicate, array), dtype=bool)
    return array[flags], array[~flags]


def compact(
    array: np.ndarray, flags: np.ndarray, backend: str | Backend | None = None
) -> np.ndarray:
    """Select elements where ``flags`` is truthy (stream compaction).

    Implemented with the classic scan-and-scatter idiom so it exercises
    the backend's ``scan``/``scatter`` path rather than boolean indexing.
    """
    be = get_backend(backend)
    array = np.asarray(array)
    flags = np.asarray(flags, dtype=np.intp)
    if array.size == 0:
        return array
    positions = be.scan(flags, np.add, exclusive=True, init=0)
    total = int(positions[-1] + flags[-1])
    out = np.empty(total, dtype=array.dtype)
    keep = flags.astype(bool)
    be.scatter(array[keep], np.asarray(positions)[keep], out)
    return out


def minloc(
    values: np.ndarray, backend: str | Backend | None = None
) -> tuple[int, Any]:
    """Index and value of the minimum element (Thrust ``min_element``)."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("minloc of empty array")
    be = get_backend(backend)
    if isinstance(be, type(get_backend("vector"))) and be.name == "vector":
        idx = int(np.argmin(values))
        return idx, values[idx]
    best_i, best_v = 0, values[0]
    for i in range(1, len(values)):
        if values[i] < best_v:
            best_i, best_v = i, values[i]
    return best_i, best_v


def segmented_minloc(
    keys: np.ndarray,
    values: np.ndarray,
    payload: np.ndarray,
    backend: str | Backend | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment argmin: for each unique key, the payload of the minimum value.

    This is the core idiom of the parallel MBP center finder: keys are halo
    tags, values are particle potentials, payload is the particle index, and
    the result is each halo's most-bound particle.

    Returns ``(unique_keys, min_values, payload_at_min)``.
    """
    be = get_backend(backend)
    keys = np.asarray(keys)
    values = np.asarray(values)
    payload = np.asarray(payload)
    if not (len(keys) == len(values) == len(payload)):
        raise ValueError("keys, values, payload must have equal length")
    if keys.size == 0:
        return keys, values, payload
    skeys, svalues, spayload = be.sort_by_key(keys, values, payload)
    uk, minv = be.reduce_by_key(skeys, svalues, "min")
    # Recover payload: first element in each segment equal to the minimum.
    if be.name == "vector":
        boundaries = np.empty(skeys.size, dtype=bool)
        boundaries[0] = True
        boundaries[1:] = skeys[1:] != skeys[:-1]
        seg_id = np.cumsum(boundaries) - 1
        is_min = svalues == minv[seg_id]
        # first hit per segment wins (stable)
        first_hit = np.zeros(len(uk), dtype=np.intp)
        hit_positions = np.flatnonzero(is_min)
        hit_segments = seg_id[hit_positions]
        # reversed scatter keeps the earliest position per segment
        first_hit[hit_segments[::-1]] = hit_positions[::-1]
        return uk, minv, spayload[first_hit]
    out_payload = np.empty(len(uk), dtype=payload.dtype)
    pos = 0
    for s in range(len(uk)):
        best_v = None
        best_p = None
        while pos < len(skeys) and skeys[pos] == uk[s]:
            if best_v is None or svalues[pos] < best_v:
                best_v = svalues[pos]
                best_p = spayload[pos]
            pos += 1
        out_payload[s] = best_p
    return uk, minv, out_payload


def zip_arrays(*arrays: Sequence) -> np.ndarray:
    """Column-stack 1-D arrays into an ``(n, k)`` array (Thrust ``zip_iterator``)."""
    return np.column_stack([np.asarray(a) for a in arrays])
