"""Execution backends for the data-parallel primitive library.

The paper's analysis algorithms are written once against PISTON/VTK-m
(built on NVIDIA Thrust) and compiled to multiple backends (CUDA, OpenMP,
TBB, serial).  This module reproduces that design in Python: a primitive
such as :func:`repro.dataparallel.primitives.reduce_by_key` is written once
and dispatched to a :class:`Backend` implementation.

Two backends are provided:

``serial``
    Pure-Python loops.  This is the stand-in for the paper's single-rank
    CPU execution path (the serial A*-era code path on Titan's CPUs).

``vector``
    NumPy-vectorized execution.  This is the stand-in for the paper's
    GPU / many-core Thrust path.  The measured ``serial``/``vector`` speed
    ratio plays the role of the paper's ~50x CPU-to-GPU speedup and is fed
    into the machine cost model (:mod:`repro.machines.cost`).

Backends are selected globally via :func:`set_default_backend`, per call
via the ``backend=`` keyword accepted by every primitive, or temporarily
via the :func:`use_backend` context manager.
"""

from __future__ import annotations

import contextlib
import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterator

import numpy as np

__all__ = [
    "Backend",
    "ProcessBackend",
    "SerialBackend",
    "VectorBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "use_backend",
]


class Backend(ABC):
    """Abstract execution backend for data-parallel primitives.

    A backend supplies the small set of Thrust-style building blocks from
    which every analysis primitive in :mod:`repro.dataparallel.primitives`
    is composed.  Inputs are 1-D :class:`numpy.ndarray` objects; outputs
    are new arrays (primitives are purely functional, mirroring Thrust's
    transform/reduce/scan semantics).
    """

    #: Registry name; subclasses must override.
    name: str = "abstract"

    # -- elementwise ---------------------------------------------------

    @abstractmethod
    def map(self, fn: Callable[..., Any], *arrays: np.ndarray) -> np.ndarray:
        """Apply ``fn`` elementwise over equally-sized arrays."""

    # -- reductions ----------------------------------------------------

    @abstractmethod
    def reduce(self, array: np.ndarray, op: Callable[[Any, Any], Any], init: Any) -> Any:
        """Fold ``array`` with associative binary ``op`` starting at ``init``."""

    @abstractmethod
    def scan(self, array: np.ndarray, op: Callable[[Any, Any], Any], *, exclusive: bool, init: Any) -> np.ndarray:
        """Prefix-scan ``array`` with associative ``op``."""

    # -- key/value -----------------------------------------------------

    @abstractmethod
    def sort_by_key(self, keys: np.ndarray, *values: np.ndarray) -> tuple[np.ndarray, ...]:
        """Stable sort of ``values`` (and the keys) by ``keys`` ascending."""

    @abstractmethod
    def reduce_by_key(
        self, keys: np.ndarray, values: np.ndarray, op: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented reduction over runs of equal *sorted* keys.

        ``op`` is one of ``"sum"``, ``"min"``, ``"max"``, ``"count"``.
        Returns ``(unique_keys, reduced_values)``.
        """

    # -- data movement ---------------------------------------------------

    @abstractmethod
    def gather(self, indices: np.ndarray, source: np.ndarray) -> np.ndarray:
        """Return ``source[indices]``."""

    @abstractmethod
    def scatter(self, values: np.ndarray, indices: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Write ``values`` into ``out`` at ``indices``; returns ``out``."""


_REDUCE_OPS_NUMPY = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


class SerialBackend(Backend):
    """Pure-Python loop backend (the CPU single-thread stand-in)."""

    name = "serial"

    def map(self, fn, *arrays):
        if not arrays:
            raise ValueError("map requires at least one input array")
        n = len(arrays[0])
        for a in arrays[1:]:
            if len(a) != n:
                raise ValueError("map inputs must have equal length")
        out = [fn(*(a[i] for a in arrays)) for i in range(n)]
        return np.asarray(out)

    def reduce(self, array, op, init):
        acc = init
        for x in array:
            acc = op(acc, x)
        return acc

    def scan(self, array, op, *, exclusive, init):
        out = np.empty(len(array), dtype=np.asarray(array).dtype if len(array) else float)
        acc = init
        if exclusive:
            for i, x in enumerate(array):
                out[i] = acc
                acc = op(acc, x)
        else:
            for i, x in enumerate(array):
                acc = op(acc, x)
                out[i] = acc
        return out

    def sort_by_key(self, keys, *values):
        order = sorted(range(len(keys)), key=lambda i: keys[i])
        order = np.asarray(order, dtype=np.intp)
        return (np.asarray(keys)[order], *(np.asarray(v)[order] for v in values))

    def reduce_by_key(self, keys, values, op):
        keys = np.asarray(keys)
        values = np.asarray(values)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if len(keys) == 0:
            return keys[:0], values[:0]
        uk: list = []
        rv: list = []
        cur_key = keys[0]
        if op == "count":
            acc = 1
        else:
            acc = values[0]
        pyop = {"sum": lambda a, b: a + b, "min": min, "max": max, "count": lambda a, b: a + 1}[op]
        for i in range(1, len(keys)):
            if keys[i] == cur_key:
                acc = pyop(acc, values[i])
            else:
                uk.append(cur_key)
                rv.append(acc)
                cur_key = keys[i]
                acc = 1 if op == "count" else values[i]
        uk.append(cur_key)
        rv.append(acc)
        out_dtype = np.intp if op == "count" else values.dtype
        return np.asarray(uk, dtype=keys.dtype), np.asarray(rv, dtype=out_dtype)

    def gather(self, indices, source):
        return np.asarray([source[i] for i in indices], dtype=np.asarray(source).dtype)

    def scatter(self, values, indices, out):
        for v, i in zip(values, indices):
            out[i] = v
        return out


class VectorBackend(Backend):
    """NumPy-vectorized backend (the GPU / many-core stand-in)."""

    name = "vector"

    def map(self, fn, *arrays):
        if not arrays:
            raise ValueError("map requires at least one input array")
        # Try whole-array application first (fn written with numpy ufuncs),
        # falling back to np.vectorize for scalar-only callables.  Only the
        # error classes a scalar-only callable produces when handed whole
        # arrays trigger the fallback; genuine kernel bugs propagate.
        try:
            out = fn(*arrays)
            out = np.asarray(out)
            if out.shape[:1] == np.asarray(arrays[0]).shape[:1]:
                return out
        except (TypeError, ValueError, AttributeError, IndexError) as exc:
            from ..obs import get_recorder

            rec = get_recorder()
            rec.counter("dataparallel_map_fallbacks_total").inc()
            rec.event(
                "dataparallel.map_fallback",
                level="debug",
                fn=getattr(fn, "__name__", repr(fn)),
                error=f"{type(exc).__name__}: {exc}",
            )
        return np.vectorize(fn)(*arrays)

    def reduce(self, array, op, init):
        array = np.asarray(array)
        if array.size == 0:
            return init
        ufunc = _lookup_ufunc(op)
        if ufunc is not None:
            return op(init, ufunc.reduce(array))
        acc = init
        for x in array:
            acc = op(acc, x)
        return acc

    def scan(self, array, op, *, exclusive, init):
        array = np.asarray(array)
        ufunc = _lookup_ufunc(op)
        if ufunc is None:
            return SerialBackend().scan(array, op, exclusive=exclusive, init=init)
        inclusive = ufunc.accumulate(array) if array.size else array.copy()
        inclusive = op(init, inclusive) if array.size else inclusive
        if not exclusive:
            return inclusive
        out = np.empty_like(inclusive)
        if array.size:
            out[0] = init
            out[1:] = inclusive[:-1]
        return out

    def sort_by_key(self, keys, *values):
        keys = np.asarray(keys)
        order = np.argsort(keys, kind="stable")
        return (keys[order], *(np.asarray(v)[order] for v in values))

    def reduce_by_key(self, keys, values, op):
        keys = np.asarray(keys)
        values = np.asarray(values)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if keys.size == 0:
            return keys[:0], values[:0]
        boundaries = np.empty(keys.size, dtype=bool)
        boundaries[0] = True
        boundaries[1:] = keys[1:] != keys[:-1]
        starts = np.flatnonzero(boundaries)
        unique_keys = keys[starts]
        if op == "count":
            counts = np.diff(np.append(starts, keys.size))
            return unique_keys, counts.astype(np.intp)
        ufunc = _REDUCE_OPS_NUMPY[op]
        reduced = ufunc.reduceat(values, starts)
        return unique_keys, reduced

    def gather(self, indices, source):
        return np.asarray(source)[np.asarray(indices)]

    def scatter(self, values, indices, out):
        out[np.asarray(indices)] = np.asarray(values)
        return out


class ProcessBackend(VectorBackend):
    """Multi-process backend: vectorized kernels fanned out over workers.

    Primitives behave exactly like :class:`VectorBackend` (they are
    fine-grained and not worth crossing a process boundary for), but
    batch drivers that understand this backend — e.g.
    :func:`repro.analysis.centers.halo_centers` — route whole per-halo
    work items through the :class:`repro.exec.ExecutionEngine`
    work-stealing executor instead of a serial loop.  ``workers`` is the
    process count the engine targets and ``kernel_backend`` names the
    in-worker primitive backend.
    """

    name = "process"

    def __init__(self, workers: int | None = None, kernel_backend: str = "vector"):
        if workers is None:
            try:
                import os

                workers = max(len(os.sched_getaffinity(0)), 1)
            except AttributeError:  # pragma: no cover - non-Linux
                import os

                workers = max(os.cpu_count() or 1, 1)
        self.workers = int(workers)
        self.kernel_backend = kernel_backend


def _lookup_ufunc(op: Callable) -> np.ufunc | None:
    """Map a scalar binary callable to the equivalent numpy ufunc, if known."""
    if isinstance(op, np.ufunc):
        return op
    table = {
        "add": np.add,
        "mul": np.multiply,
        "min": np.minimum,
        "max": np.maximum,
    }
    name = getattr(op, "__name__", "")
    if name in table:
        return table[name]
    # Probe common operator-module callables.
    import operator

    probes = {
        operator.add: np.add,
        operator.mul: np.multiply,
    }
    return probes.get(op)


_registry: dict[str, Backend] = {}
_state = threading.local()


def register_backend(backend: Backend) -> None:
    """Register ``backend`` under ``backend.name`` for global lookup."""
    _registry[backend.name] = backend


def available_backends() -> list[str]:
    """Names of all registered backends."""
    return sorted(_registry)


def get_backend(name: str | Backend | None = None) -> Backend:
    """Resolve a backend by name; ``None`` returns the current default."""
    if isinstance(name, Backend):
        return name
    if name is None:
        name = getattr(_state, "default", "vector")
    try:
        return _registry[name]
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; available: {available_backends()}") from None


def set_default_backend(name: str) -> None:
    """Set the process-default backend (thread-local)."""
    get_backend(name)  # validate
    _state.default = name


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[Backend]:
    """Temporarily switch the default backend within a ``with`` block."""
    previous = getattr(_state, "default", "vector")
    set_default_backend(name)
    try:
        yield get_backend(name)
    finally:
        _state.default = previous


register_backend(SerialBackend())
register_backend(VectorBackend())
register_backend(ProcessBackend())
