"""Common operator functors used with the data-parallel primitives.

These correspond to Thrust's ``thrust::plus``, ``thrust::minimum`` etc.,
plus a handful of domain-specific functors used by the halo analysis
algorithms (pairwise gravitational potential terms, periodic distances).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "add",
    "mul",
    "min_",
    "max_",
    "periodic_delta",
    "periodic_distance_sq",
    "pair_potential",
]


def add(a, b):
    """Binary addition (works elementwise on arrays)."""
    return a + b


def mul(a, b):
    """Binary multiplication (works elementwise on arrays)."""
    return a * b


def min_(a, b):
    """Binary minimum."""
    return np.minimum(a, b)


def max_(a, b):
    """Binary maximum."""
    return np.maximum(a, b)


def periodic_delta(a, b, box: float):
    """Minimum-image coordinate difference ``a - b`` in a periodic box."""
    d = a - b
    return d - box * np.round(d / box)


def periodic_distance_sq(p, q, box: float):
    """Squared minimum-image distance between points ``p`` and ``q``.

    ``p`` and ``q`` are arrays whose last axis is the spatial dimension.
    """
    d = periodic_delta(np.asarray(p), np.asarray(q), box)
    return np.sum(d * d, axis=-1)


def pair_potential(dist, mass, softening: float = 1.0e-7):
    """Contribution ``-m / (d + eps)`` of one particle pair to the potential.

    The small constant offset mirrors the paper's note that "a small
    constant offset term may be added to the distance to avoid numerical
    issues caused by extremely close particles".
    """
    return -mass / (dist + softening)
