"""PISTON/VTK-m-style portable data-parallel primitive library.

Write an algorithm once against these primitives and run it on any
registered backend (``serial`` pure-Python loops, or ``vector``
NumPy-vectorized — the stand-ins for the paper's CPU and GPU targets).
"""

from .backends import (
    Backend,
    ProcessBackend,
    SerialBackend,
    VectorBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from .primitives import (
    compact,
    count_if,
    exclusive_scan,
    gather,
    inclusive_scan,
    map_,
    minloc,
    partition,
    reduce_,
    reduce_by_key,
    scatter,
    segmented_minloc,
    sort_by_key,
    unique,
    zip_arrays,
)

__all__ = [
    "Backend",
    "ProcessBackend",
    "SerialBackend",
    "VectorBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "use_backend",
    "compact",
    "count_if",
    "exclusive_scan",
    "gather",
    "inclusive_scan",
    "map_",
    "minloc",
    "partition",
    "reduce_",
    "reduce_by_key",
    "scatter",
    "segmented_minloc",
    "sort_by_key",
    "unique",
    "zip_arrays",
]
