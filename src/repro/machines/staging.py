"""In-transit staging: the shared-memory Level 2 data path.

The paper's third combined-workflow variant is "at this point only a
hypothetical implementation": instead of writing Level 2 data to disk,
"the data is now stored on a separate memory device and the analysis is
done *in-transit*.  This could be either NVRAM or an external memory
set-up that is connected to both the main HPC system as well as the
analysis cluster."

:class:`StagingArea` implements that device as an in-process object
store shared between the producing simulation and the consuming
analysis: named items (one per snapshot) with block structure, put/get
semantics, byte accounting, and optional consume-once draining.  The
live workflow driver uses it to run the in-transit variant for real —
no files touch disk for the Level 2 product.

Failure model (see ``docs/failures.md``): each put/get transfer runs
under a :class:`~repro.faults.RetryPolicy` at the ``"staging.put"`` /
``"staging.get"`` injection sites — the flaky-interconnect model for
the hypothetical NVRAM device.  Only injected faults are retried;
real back-pressure (``MemoryError`` when the device is full) and
consumer errors (``KeyError``, ``TimeoutError``) propagate immediately,
exactly as before.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..faults import FaultInjected, RetryPolicy, maybe_inject, resolve_retry
from ..obs import get_recorder

__all__ = ["StagedItem", "StagingArea"]


@dataclass
class StagedItem:
    """One staged data product: named blocks of named arrays."""

    name: str
    blocks: list[dict[str, np.ndarray]]

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for blk in self.blocks for a in blk.values())

    @property
    def n_rows(self) -> int:
        return sum(len(next(iter(blk.values()))) if blk else 0 for blk in self.blocks)

    def read_all(self) -> dict[str, np.ndarray]:
        """Concatenate all blocks (same contract as GenericIOFile.read_all)."""
        if not self.blocks:
            return {}
        keys = list(self.blocks[0].keys())
        return {
            k: np.concatenate([blk[k] for blk in self.blocks]) for k in keys
        }


class StagingArea:
    """Shared-memory staging device for in-transit workflows.

    Thread-safe: the simulation side ``put``s items while a co-scheduled
    analysis thread ``wait_for``s and ``get``s them.  Capacity is
    enforced in bytes (NVRAM devices are finite); producers get a
    ``MemoryError`` when the device is full — the back-pressure a real
    burst buffer exhibits.

    ``retry`` governs transfer retries at the ``"staging.put"`` /
    ``"staging.get"`` fault-injection sites (``None`` → the tree-wide
    default policy); only :class:`~repro.faults.FaultInjected` is
    retried, so real back-pressure still propagates immediately.
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.capacity_bytes = capacity_bytes
        self.retry = resolve_retry(retry)
        self._items: dict[str, StagedItem] = {}
        self._lock = threading.Lock()
        self._event = threading.Condition(self._lock)
        self.bytes_staged_total = 0
        self.puts = 0
        self.gets = 0

    def _transfer(self, site: str, name: str) -> None:
        """One staged transfer attempt over the (injectable) interconnect."""
        self.retry.call(
            maybe_inject, site, name, site=site, key=name, retryable=(FaultInjected,)
        )

    # -- producer side ---------------------------------------------------------

    def put(self, name: str, blocks: list[dict[str, np.ndarray]]) -> int:
        """Stage an item; returns its size in bytes."""
        rec = get_recorder()
        item = StagedItem(
            name=name,
            blocks=[{k: np.asarray(v) for k, v in b.items()} for b in blocks],
        )
        self._transfer("staging.put", name)
        with rec.span("staging.put", item=name, nbytes=item.nbytes):
            with self._event:
                if name in self._items:
                    raise KeyError(f"item {name!r} already staged")
                if (
                    self.capacity_bytes is not None
                    and self.used_bytes_unlocked() + item.nbytes > self.capacity_bytes
                ):
                    rec.event(
                        "staging.full",
                        level="error",
                        item=name,
                        nbytes=item.nbytes,
                        used=self.used_bytes_unlocked(),
                        capacity=self.capacity_bytes,
                    )
                    raise MemoryError(
                        f"staging area full: {self.used_bytes_unlocked()} + "
                        f"{item.nbytes} > {self.capacity_bytes}"
                    )
                self._items[name] = item
                self.bytes_staged_total += item.nbytes
                self.puts += 1
                rec.counter("staging_bytes_staged_total").inc(item.nbytes)
                rec.gauge("staging_used_bytes").set(self.used_bytes_unlocked())
                self._event.notify_all()
        return item.nbytes

    # -- consumer side ---------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._items)

    def used_bytes_unlocked(self) -> int:
        return sum(i.nbytes for i in self._items.values())

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self.used_bytes_unlocked()

    def get(self, name: str, drain: bool = True) -> StagedItem:
        """Fetch a staged item; ``drain`` frees the device space."""
        rec = get_recorder()
        self._transfer("staging.get", name)
        with self._lock:
            if name not in self._items:
                raise KeyError(f"no staged item {name!r}")
            item = self._items.pop(name) if drain else self._items[name]
            self.gets += 1
            rec.counter("staging_gets_total").inc()
            rec.gauge("staging_used_bytes").set(self.used_bytes_unlocked())
            return item

    def wait_for(self, name: str, timeout: float = 30.0, drain: bool = True) -> StagedItem:
        """Block until ``name`` is staged (the in-transit consumer path)."""
        rec = get_recorder()
        self._transfer("staging.get", name)
        t0 = time.perf_counter()
        with rec.span("staging.wait", item=name):
            with self._event:
                ok = self._event.wait_for(lambda: name in self._items, timeout=timeout)
                if not ok:
                    rec.event(
                        "staging.wait_timeout", level="error", item=name, timeout=timeout
                    )
                    raise TimeoutError(
                        f"staged item {name!r} did not appear in {timeout}s"
                    )
                item = self._items.pop(name) if drain else self._items[name]
                self.gets += 1
                rec.counter("staging_gets_total").inc()
                rec.gauge("staging_used_bytes").set(self.used_bytes_unlocked())
        rec.histogram("staging_wait_seconds").observe(time.perf_counter() - t0)
        return item

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
