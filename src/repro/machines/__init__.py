"""Simulated HPC facilities: machines, cost model, scheduler, listener."""

from .cost import CostModel, PAPER_CALIBRATION
from .listener import BatchTemplate, Listener, ListenerStats
from .machine import MOONLIGHT, MachineSpec, QueuePolicy, RHEA, TITAN
from .scheduler import Job, Scheduler
from .staging import StagedItem, StagingArea
from .storage import StorageDevice, burst_buffer_like, lustre_like

__all__ = [
    "CostModel",
    "PAPER_CALIBRATION",
    "BatchTemplate",
    "Listener",
    "ListenerStats",
    "MOONLIGHT",
    "MachineSpec",
    "QueuePolicy",
    "RHEA",
    "TITAN",
    "Job",
    "Scheduler",
    "StagedItem",
    "StagingArea",
    "StorageDevice",
    "burst_buffer_like",
    "lustre_like",
]
