"""Simulated HPC facilities — the paper's §2/§3.2 machine layer.

Six modules, one per facility concern (guide: ``docs/machines.md``):

* :mod:`~repro.machines.machine` — Titan/Rhea/Moonlight specs and queue
  policies (including Titan's ≤2-small-jobs rule);
* :mod:`~repro.machines.cost` — the calibrated cost model mapping
  workload quantities to projected paper-scale seconds (Tables 2–4);
* :mod:`~repro.machines.scheduler` — discrete-event batch scheduler
  with capacity + policy constraints, deadlines, requeue, dead-letter;
* :mod:`~repro.machines.listener` — the Bellerophon-style co-scheduling
  listener that turns new Level 2 files into analysis-job submissions;
* :mod:`~repro.machines.staging` — the hypothetical in-transit NVRAM
  staging device (shared-memory Level 2 path);
* :mod:`~repro.machines.storage` — Lustre-like and burst-buffer storage
  tiers with byte/seconds accounting.

The campaign service (:mod:`repro.service`) builds on this layer: its
packer prices jobs with the cost model and its facade submits packed
allocations through the scheduler.
"""

from .cost import CostModel, PAPER_CALIBRATION
from .listener import BatchTemplate, Listener, ListenerStats
from .machine import MOONLIGHT, MachineSpec, QueuePolicy, RHEA, TITAN
from .scheduler import Job, Scheduler
from .staging import StagedItem, StagingArea
from .storage import StorageDevice, burst_buffer_like, lustre_like

__all__ = [
    "CostModel",
    "PAPER_CALIBRATION",
    "BatchTemplate",
    "Listener",
    "ListenerStats",
    "MOONLIGHT",
    "MachineSpec",
    "QueuePolicy",
    "RHEA",
    "TITAN",
    "Job",
    "Scheduler",
    "StagedItem",
    "StagingArea",
    "StorageDevice",
    "burst_buffer_like",
    "lustre_like",
]
