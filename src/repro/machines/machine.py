"""Descriptions of the HPC facilities the paper's workflows ran on.

Three machines appear in the evaluation:

* **Titan** (OLCF) — the primary HPC system: 18,688 CPU+GPU (K20X)
  nodes, charged at 30 core-hours per node-hour, queue policy favoring
  large jobs (at most two sub-125-node jobs running simultaneously).
* **Rhea** (OLCF) — the designated analysis cluster: CPU-only, short
  queues for small jobs.
* **Moonlight** (LANL) — a GPU (M2090) analysis cluster; the paper
  adjusts Moonlight center-finding times by a factor 0.55 to compare
  with Titan's newer K20X GPUs.

These specs drive the cost model and the discrete-event scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueuePolicy", "MachineSpec", "TITAN", "RHEA", "MOONLIGHT"]


@dataclass(frozen=True)
class QueuePolicy:
    """Batch-queue behaviour of a facility.

    ``small_job_nodes``/``max_small_jobs``: Titan's policy that "only
    allows two jobs that use less than 125 nodes to run simultaneously".
    ``base_wait_seconds`` and ``full_machine_wait_seconds`` parameterize
    the expected queue wait as a function of requested fraction of the
    machine: small requests wait ``base_wait_seconds``; a request for
    the whole machine waits ``full_machine_wait_seconds`` ("this can add
    days to a week of wait time"), interpolated by a power law.
    """

    small_job_nodes: int | None = None
    max_small_jobs: int | None = None
    base_wait_seconds: float = 300.0
    full_machine_wait_seconds: float = 4.0 * 86400.0
    wait_exponent: float = 1.5

    def expected_wait(self, n_nodes: int, machine_nodes: int) -> float:
        """Expected queue wait for a job of ``n_nodes`` on this machine."""
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        frac = min(n_nodes / machine_nodes, 1.0)
        return self.base_wait_seconds + (
            self.full_machine_wait_seconds - self.base_wait_seconds
        ) * frac**self.wait_exponent

    def max_concurrent_small(self, n_nodes: int) -> int | None:
        """Concurrency cap applying to a job of this size (None = uncapped)."""
        if self.small_job_nodes is not None and n_nodes < self.small_job_nodes:
            return self.max_small_jobs
        return None


@dataclass(frozen=True)
class MachineSpec:
    """One HPC facility.

    ``gpu_factor`` expresses the machine's GPU center-finding speed
    relative to Titan's K20X (= 1.0); ``charge_factor`` is the facility's
    core-hours charged per node-hour.
    """

    name: str
    n_nodes: int
    cores_per_node: int
    charge_factor: float
    has_gpu: bool
    gpu_factor: float = 1.0
    queue: QueuePolicy = field(default_factory=QueuePolicy)

    def core_hours(self, wall_seconds: float, n_nodes: int) -> float:
        """Charged core-hours for a job (the Titan "30x" policy)."""
        if n_nodes > self.n_nodes:
            raise ValueError(
                f"{self.name} has {self.n_nodes} nodes; requested {n_nodes}"
            )
        return wall_seconds / 3600.0 * n_nodes * self.charge_factor


#: OLCF Titan: the paper's primary system.  "an hour per node leads to a
#: charge of 30 core hours"; queue policy "only allows two jobs that use
#: less than 125 nodes to run simultaneously".
TITAN = MachineSpec(
    name="Titan",
    n_nodes=18688,
    cores_per_node=16,
    charge_factor=30.0,
    has_gpu=True,
    gpu_factor=1.0,
    queue=QueuePolicy(
        small_job_nodes=125,
        max_small_jobs=2,
        base_wait_seconds=1800.0,
        full_machine_wait_seconds=4.0 * 86400.0,
    ),
)

#: OLCF Rhea: designated analysis cluster, CPU-only, short queues.
RHEA = MachineSpec(
    name="Rhea",
    n_nodes=512,
    cores_per_node=16,
    charge_factor=16.0,
    has_gpu=False,
    gpu_factor=0.0,
    queue=QueuePolicy(base_wait_seconds=120.0, full_machine_wait_seconds=86400.0),
)

#: LANL Moonlight: GPU analysis cluster (M2090).  The paper compares
#: timings via a factor of 0.55: Titan's K20X completes the same work in
#: 0.55x the Moonlight time.
MOONLIGHT = MachineSpec(
    name="Moonlight",
    n_nodes=308,
    cores_per_node=16,
    charge_factor=16.0,
    has_gpu=True,
    gpu_factor=0.55,
    queue=QueuePolicy(base_wait_seconds=120.0, full_machine_wait_seconds=86400.0),
)
