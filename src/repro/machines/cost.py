"""Calibrated cost model: workload quantities → paper-scale timings.

The reproduction runs *real* (small) simulations and analyses, measuring
machine-independent workload quantities — particle counts, potential
pair-interaction counts, bytes written/read/moved.  This module converts
those quantities into projected wall-clock seconds on the paper's
machines, using a handful of rate constants calibrated against anchor
numbers quoted in the paper (Table 4's measured phases):

========================  ===========================================
anchor (paper)            constant calibrated
========================  ===========================================
halo find, 1024³ / 32     ``fof_rate`` (particles/s/node, CPU path)
  nodes: ~300 s
centers ≤ 300k: ~61 s;    ``pair_rate_gpu`` (pair interactions/s/node
centers all: ~422 s         on a Titan K20X)
"factor of fifty          ``gpu_cpu_factor = 50``
  speed-up"
write/read Level 1:       ``io_rate`` (bytes/s/node, Lustre) with an
  5 s each                  aggregate cap
redistribute Level 1:     ``redist_rate`` (bytes/s/node)
  435 s; Level 2: 75 s
sim: 772 s                ``sim_rate`` (particle-steps/s/node)
subhalos: slowest node    ``subhalo_coeff`` (n log n per-halo model)
  8172 s on 32 nodes
========================  ===========================================

All projections then follow from the model — the reproduced tables are
*predictions* of the calibrated model driven by measured workload
distributions, not transcriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .machine import MachineSpec

__all__ = ["CostModel", "PAPER_CALIBRATION"]


@dataclass(frozen=True)
class CostModel:
    """Rate constants (per Titan node unless noted) and conversions."""

    #: FOF halo-finding throughput, particles/s/node (CPU code path).
    fof_rate: float = 1.1e5
    #: MBP brute-force pair interactions/s/node on a Titan K20X GPU.
    pair_rate_gpu: float = 1.54e10
    #: GPU-to-CPU speed ratio for the center finder (paper: "approximately
    #: a factor of fifty speed-up").
    gpu_cpu_factor: float = 50.0
    #: File-system bandwidth per node, bytes/s, and the aggregate cap
    #: (Lustre saturates well below nodes x per-node rate at scale).
    #: The floor models small-client-count transfers, which see a larger
    #: per-client share of the OSTs (calibrated from the 4-node Level 2
    #: read taking 3 s): effective bw = max(min(n*rate, cap), floor).
    io_rate_per_node: float = 2.42e8
    io_aggregate_cap: float = 35.0e9
    io_floor: float = 2.58e9
    #: Particle redistribution: per-node rate with a small-n floor
    #: (4-node Level 2 redistribution achieved ~100 MB/s aggregate while
    #: 32 nodes managed ~89 MB/s — all-to-all congestion dominates at
    #: small scale): effective bw = max(n*rate, floor).
    redist_rate: float = 2.78e6
    redist_floor: float = 9.0e7
    #: Simulation throughput, particle-steps/s/node.
    sim_rate: float = 2.6e6
    #: Subhalo-finding cost coefficient: seconds/node = coeff * sum over
    #: parent halos of n*log2(n) (serial tree code, CPU only).
    subhalo_coeff: float = 2.7e-5

    # -- per-phase projections ------------------------------------------------

    def sim_seconds(self, n_particles: int, n_steps: int, n_nodes: int) -> float:
        """Wall seconds for the main simulation."""
        return n_particles * n_steps / (self.sim_rate * n_nodes)

    def fof_seconds(self, particles_per_node: float) -> float:
        """Wall seconds of FOF on the busiest node (find is well balanced,
        so the mean per-node load is representative)."""
        return particles_per_node / self.fof_rate

    def pair_rate(self, machine: MachineSpec, backend: str = "gpu") -> float:
        """Pair-interaction rate per node on ``machine``."""
        if backend == "gpu":
            if not machine.has_gpu:
                raise ValueError(f"{machine.name} has no GPUs")
            return self.pair_rate_gpu * machine.gpu_factor
        return self.pair_rate_gpu / self.gpu_cpu_factor

    def center_seconds(
        self, pairs: float | np.ndarray, machine: MachineSpec, backend: str = "gpu"
    ) -> float | np.ndarray:
        """Wall seconds to evaluate ``pairs`` pair interactions on one node."""
        return np.asarray(pairs, dtype=float) / self.pair_rate(machine, backend)

    def io_seconds(self, nbytes: float, n_nodes: int) -> float:
        """Wall seconds to write or read ``nbytes`` with ``n_nodes`` writers."""
        bandwidth = max(
            min(self.io_rate_per_node * n_nodes, self.io_aggregate_cap), self.io_floor
        )
        return nbytes / bandwidth

    def redistribute_seconds(self, nbytes: float, n_nodes: int) -> float:
        """Wall seconds to redistribute ``nbytes`` across ``n_nodes``."""
        bandwidth = max(self.redist_rate * n_nodes, self.redist_floor)
        return nbytes / bandwidth

    def subhalo_seconds(self, parent_counts: np.ndarray) -> float:
        """Wall seconds on one node to find subhalos in the given parents."""
        parent_counts = np.asarray(parent_counts, dtype=float)
        if parent_counts.size == 0:
            return 0.0
        work = np.sum(parent_counts * np.log2(np.maximum(parent_counts, 2.0)))
        return float(self.subhalo_coeff * work)

    # -- calibration helpers ---------------------------------------------------

    def with_anchor_center_small(
        self, pairs_small_per_node: float, seconds: float, machine: MachineSpec
    ) -> "CostModel":
        """Recalibrate ``pair_rate_gpu`` so the given per-node small-halo
        workload takes ``seconds`` on ``machine`` (e.g. the paper's "just
        over one minute" anchor)."""
        rate = pairs_small_per_node / seconds / machine.gpu_factor
        return replace(self, pair_rate_gpu=rate)

    def with_anchor_fof(self, particles_per_node: float, seconds: float) -> "CostModel":
        """Recalibrate ``fof_rate`` against a measured find time."""
        return replace(self, fof_rate=particles_per_node / seconds)

    def with_anchor_sim(
        self, n_particles: int, n_steps: int, n_nodes: int, seconds: float
    ) -> "CostModel":
        """Recalibrate ``sim_rate`` against a measured simulation time."""
        return replace(self, sim_rate=n_particles * n_steps / (seconds * n_nodes))


#: Rates calibrated against the paper's Table 4 anchors (1024³ particles
#: on 32 Titan nodes, last time step):
#:
#: * sim 772 s           -> sim_rate = 1024³·60/(772·32) = 2.6e6
#: * find ≈ 300 s        -> fof_rate = 1024³/32/300 = 1.12e5
#: * centers (largest halo 2,548,321 particles dominates the slowest
#:   node at ~422 s of the 722 s full in-situ analysis)
#:                        -> pair_rate_gpu = 2548321²/422 ≈ 1.54e10
#: * write/read Level 1 (36 B × 1024³ = 38.7 GB) at 5 s
#:                        -> io_rate_per_node = 38.7e9/5/32 = 2.42e8
#: * redistribute Level 1 435 s -> redist_rate = 38.7e9/435/32 = 2.78e6
#: * subhalos slowest node 8172 s (≈1/32 of halos > 5000 particles)
#:                        -> subhalo_coeff fitted in the benchmarks
PAPER_CALIBRATION = CostModel()
