"""Discrete-event batch scheduler for the simulated facilities.

Models the queueing behaviour the co-scheduled workflow depends on:
jobs request nodes and a duration, the machine runs as many as fit,
FIFO order with capacity and policy constraints — including Titan's
small-job rule ("the queue policy only allows two jobs that use less
than 125 nodes to run simultaneously"), which is why the paper's
multi-job co-scheduling needed a queue exemption on Titan but not on
the analysis clusters.

The simulation clock is event-driven: :meth:`Scheduler.run` advances to
each job completion and starts whatever newly fits.  Dependencies
(``after=``) express "queued after sim" orderings.

Failure model (see ``docs/failures.md``): a job's real ``payload`` runs
under a :class:`~repro.faults.RetryPolicy` at the
``"scheduler.payload"`` injection site, and jobs may carry a
``deadline`` — a wall-limit on the *simulated* duration; a job whose
``duration`` exceeds it is cut off at the deadline and counted as
failed (the batch-system wall-clock kill).  A failed job is requeued up
to ``max_requeues`` times (fresh ``submit_time`` = current sim clock,
FIFO order preserved); after that it lands in the scheduler's bounded
:class:`~repro.faults.DeadLetterBox` (capped at
:data:`~repro.faults.DEAD_LETTER_LIMIT` retained entries, exact
``total`` regardless) and the run continues without it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..faults import DEAD_LETTER_LIMIT, DeadLetterBox, RetryPolicy, maybe_inject, resolve_retry
from ..obs import get_recorder
from .machine import MachineSpec

__all__ = ["Job", "Scheduler"]


@dataclass
class Job:
    """One batch job.

    ``submit_time`` is when the job enters the queue; ``after`` lists
    jobs that must *complete* before this one may start (the off-line
    workflow's "queued after sim" semantics).

    ``payload`` is an optional real callable executed when the job
    starts on the simulated machine — the hook the live co-scheduled
    workflow uses to run its actual analysis (e.g. an off-line center
    job on the :mod:`repro.exec` engine) at the moment the scheduler
    grants it nodes.  Its return value lands in ``result``.

    ``deadline`` caps the *simulated* runtime (the batch wall limit): a
    job whose ``duration`` exceeds it ends at ``start + deadline`` and
    counts as failed.  A failed job (deadline or payload failure) is
    requeued up to ``max_requeues`` times, then dead-lettered.
    """

    name: str
    n_nodes: int
    duration: float
    submit_time: float = 0.0
    after: list["Job"] = field(default_factory=list)
    payload: Callable[[], Any] | None = None
    deadline: float | None = None
    max_requeues: int = 0

    # filled by the scheduler
    start_time: float | None = None
    end_time: float | None = None
    result: Any = None
    attempts: int = 0
    failed: bool = False
    error: str | None = None

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting after submission (and dependencies)."""
        if self.start_time is None:
            raise RuntimeError(f"job {self.name!r} has not been scheduled")
        ready = max([self.submit_time, *(d.end_time or 0.0 for d in self.after)])
        return self.start_time - ready

    @property
    def done(self) -> bool:
        return self.end_time is not None


class Scheduler:
    """Event-driven FIFO scheduler with capacity + policy constraints.

    Parameters
    ----------
    machine:
        The simulated machine (nodes + queue policy).
    payload_retry:
        :class:`~repro.faults.RetryPolicy` for each job's real payload
        (``None`` → the tree-wide default of 3 attempts).  Pass
        ``RetryPolicy(max_attempts=1)`` to disable retrying.
    dead_letter_limit:
        Cap on *retained* dead-letter entries; the box's ``total``
        stays exact beyond it.
    """

    def __init__(
        self,
        machine: MachineSpec,
        payload_retry: RetryPolicy | None = None,
        dead_letter_limit: int = DEAD_LETTER_LIMIT,
    ):
        self.machine = machine
        self.jobs: list[Job] = []
        self.payload_retry = resolve_retry(payload_retry)
        self.dead_letter = DeadLetterBox("scheduler", limit=dead_letter_limit)
        self._counter = itertools.count()

    def _run_payload(self, job: Job) -> Any:
        """One payload attempt (the unit the retry policy repeats)."""
        maybe_inject("scheduler.payload", key=job.name)
        assert job.payload is not None
        return job.payload()

    def submit(self, job: Job) -> Job:
        """Queue a job (validated against machine size)."""
        if job.n_nodes < 1:
            raise ValueError("jobs need at least one node")
        if job.n_nodes > self.machine.n_nodes:
            raise ValueError(
                f"job {job.name!r} wants {job.n_nodes} nodes; "
                f"{self.machine.name} has {self.machine.n_nodes}"
            )
        if job.duration < 0:
            raise ValueError("duration must be non-negative")
        self.jobs.append(job)
        return job

    def run(self) -> float:
        """Schedule all submitted jobs; returns the makespan (last end time).

        FIFO by (ready time, submission order): a job blocked by
        capacity or policy also blocks later jobs from jumping ahead
        (conservative, no backfill — matching the paper-era schedulers
        "generally inadequate for the needs of in-transit workflows").
        """
        rec = get_recorder()
        # journaled machine geometry: MachineTimeline.from_events rebuilds
        # the per-node Gantt from run_begin + job_start records alone
        rec.event(
            "scheduler.run_begin",
            machine=self.machine.name,
            n_nodes=self.machine.n_nodes,
            jobs=len(self.jobs),
        )
        pending = sorted(
            self.jobs, key=lambda j: (j.submit_time, self.jobs.index(j))
        )
        running: list[tuple[float, int, Job]] = []  # (end_time, tiebreak, job)
        free = self.machine.n_nodes
        clock = 0.0
        small_cap = None
        policy = self.machine.queue
        makespan = 0.0

        def small_running() -> int:
            return sum(
                1
                for _, _, j in running
                if policy.small_job_nodes is not None and j.n_nodes < policy.small_job_nodes
            )

        while pending or running:
            progressed = True
            while progressed:
                progressed = False
                for job in list(pending):
                    if job.submit_time > clock:
                        continue
                    if any(not d.done or d.end_time > clock for d in job.after):
                        continue
                    if job.n_nodes > free:
                        break  # FIFO: don't let later jobs jump the queue
                    small_cap = policy.max_concurrent_small(job.n_nodes)
                    if small_cap is not None and small_running() >= small_cap:
                        continue  # policy-blocked; later (bigger) jobs may pass
                    job.attempts += 1
                    job.failed = False
                    job.error = None
                    sim_duration = job.duration
                    if job.deadline is not None and sim_duration > job.deadline:
                        # batch wall-clock kill: the job is cut off at the
                        # deadline and counted as failed
                        sim_duration = job.deadline
                        job.failed = True
                        job.error = (
                            f"deadline: duration {job.duration} exceeds "
                            f"wall limit {job.deadline}"
                        )
                    job.start_time = clock
                    job.end_time = clock + sim_duration
                    makespan = max(makespan, job.end_time)
                    free -= job.n_nodes
                    heapq.heappush(running, (job.end_time, next(self._counter), job))
                    pending.remove(job)
                    progressed = True
                    # sim-clock telemetry: queue waits are the co-scheduling
                    # quantity the paper's policy discussion turns on
                    rec.histogram("scheduler_queue_wait_seconds").observe(
                        job.queue_wait
                    )
                    rec.counter("scheduler_jobs_started_total").inc()
                    rec.event(
                        "scheduler.job_start",
                        job=job.name,
                        machine=self.machine.name,
                        n_nodes=job.n_nodes,
                        sim_start=job.start_time,
                        sim_end=job.end_time,
                        queue_wait=job.queue_wait,
                    )
                    if job.payload is not None and not job.failed:
                        # execute the attached real work at grant time,
                        # under the payload retry policy (with
                        # "scheduler.payload" fault injection per attempt)
                        with rec.span(
                            "scheduler.job_exec", job=job.name, n_nodes=job.n_nodes
                        ):
                            try:
                                outcome = self.payload_retry.run(
                                    self._run_payload,
                                    job,
                                    site="scheduler.payload",
                                    key=job.name,
                                )
                            except Exception as exc:
                                job.failed = True
                                job.error = f"{type(exc).__name__}: {exc}"
                                rec.event(
                                    "scheduler.payload_failed",
                                    level="warning",
                                    job=job.name,
                                    error=job.error,
                                )
                            else:
                                job.result = outcome.value
                                rec.counter(
                                    "scheduler_payloads_executed_total"
                                ).inc()
            if running:
                end, _, job = heapq.heappop(running)
                clock = max(clock, end)
                free += job.n_nodes
                if job.failed:
                    self._resolve_failure(job, pending, clock)
            elif pending:
                # nothing running: advance to the next relevant instant
                candidates = [j.submit_time for j in pending if j.submit_time > clock]
                dep_ends = [
                    d.end_time
                    for j in pending
                    for d in j.after
                    if d.end_time is not None and d.end_time > clock
                ]
                times = candidates + dep_ends
                if not times:
                    stuck = [j.name for j in pending]
                    rec.event("scheduler.deadlock", level="error", jobs=stuck)
                    raise RuntimeError(
                        f"scheduler deadlock: jobs {stuck} can never start "
                        "(unsatisfied dependencies or capacity)"
                    )
                clock = min(times)
        rec.event(
            "scheduler.done",
            machine=self.machine.name,
            n_nodes=self.machine.n_nodes,
            jobs=len(self.jobs),
            makespan=makespan,
            dead_lettered=self.dead_letter.total,
        )
        return makespan

    def allocations(self) -> list[tuple[str, int, float, float]]:
        """Completed allocations as ``(name, n_nodes, start, end)`` tuples.

        The input for :class:`repro.obs.timeline.MachineTimeline` — the
        per-node occupancy Gantt behind the paper's Table 3.
        """
        return [
            (j.name, j.n_nodes, j.start_time, j.end_time)
            for j in self.jobs
            if j.start_time is not None and j.end_time is not None
        ]

    def _resolve_failure(self, job: Job, pending: list[Job], clock: float) -> None:
        """Requeue a failed job, or dead-letter it when requeues run out."""
        rec = get_recorder()
        rec.counter("scheduler_jobs_failed_total").inc()
        rec.event(
            "scheduler.job_failed",
            level="error",
            job=job.name,
            attempts=job.attempts,
            error=job.error,
            sim_time=clock,
        )
        if job.attempts <= job.max_requeues:
            # fresh submission at the current sim clock; appending keeps
            # FIFO order (everything already pending was submitted earlier)
            job.submit_time = clock
            job.start_time = None
            job.end_time = None
            pending.append(job)
            rec.counter("scheduler_requeues_total").inc()
            rec.event(
                "scheduler.job_requeued",
                level="warning",
                job=job.name,
                attempt=job.attempts,
                sim_time=clock,
            )
        else:
            self.dead_letter.add(
                job.name,
                job.error or "failed",
                attempts=job.attempts,
                sim_time=clock,
            )
