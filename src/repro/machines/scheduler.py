"""Discrete-event batch scheduler for the simulated facilities.

Models the queueing behaviour the co-scheduled workflow depends on:
jobs request nodes and a duration, the machine runs as many as fit,
FIFO order with capacity and policy constraints — including Titan's
small-job rule ("the queue policy only allows two jobs that use less
than 125 nodes to run simultaneously"), which is why the paper's
multi-job co-scheduling needed a queue exemption on Titan but not on
the analysis clusters.

The simulation clock is event-driven: :meth:`Scheduler.run` advances to
each job completion and starts whatever newly fits.  Dependencies
(``after=``) express "queued after sim" orderings.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs import get_recorder
from .machine import MachineSpec

__all__ = ["Job", "Scheduler"]


@dataclass
class Job:
    """One batch job.

    ``submit_time`` is when the job enters the queue; ``after`` lists
    jobs that must *complete* before this one may start (the off-line
    workflow's "queued after sim" semantics).

    ``payload`` is an optional real callable executed when the job
    starts on the simulated machine — the hook the live co-scheduled
    workflow uses to run its actual analysis (e.g. an off-line center
    job on the :mod:`repro.exec` engine) at the moment the scheduler
    grants it nodes.  Its return value lands in ``result``.
    """

    name: str
    n_nodes: int
    duration: float
    submit_time: float = 0.0
    after: list["Job"] = field(default_factory=list)
    payload: Callable[[], Any] | None = None

    # filled by the scheduler
    start_time: float | None = None
    end_time: float | None = None
    result: Any = None

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting after submission (and dependencies)."""
        if self.start_time is None:
            raise RuntimeError(f"job {self.name!r} has not been scheduled")
        ready = max([self.submit_time, *(d.end_time or 0.0 for d in self.after)])
        return self.start_time - ready

    @property
    def done(self) -> bool:
        return self.end_time is not None


class Scheduler:
    """Event-driven FIFO scheduler with capacity + policy constraints."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine
        self.jobs: list[Job] = []
        self._counter = itertools.count()

    def submit(self, job: Job) -> Job:
        """Queue a job (validated against machine size)."""
        if job.n_nodes < 1:
            raise ValueError("jobs need at least one node")
        if job.n_nodes > self.machine.n_nodes:
            raise ValueError(
                f"job {job.name!r} wants {job.n_nodes} nodes; "
                f"{self.machine.name} has {self.machine.n_nodes}"
            )
        if job.duration < 0:
            raise ValueError("duration must be non-negative")
        self.jobs.append(job)
        return job

    def run(self) -> float:
        """Schedule all submitted jobs; returns the makespan (last end time).

        FIFO by (ready time, submission order): a job blocked by
        capacity or policy also blocks later jobs from jumping ahead
        (conservative, no backfill — matching the paper-era schedulers
        "generally inadequate for the needs of in-transit workflows").
        """
        rec = get_recorder()
        pending = sorted(
            self.jobs, key=lambda j: (j.submit_time, self.jobs.index(j))
        )
        running: list[tuple[float, int, Job]] = []  # (end_time, tiebreak, job)
        free = self.machine.n_nodes
        clock = 0.0
        small_cap = None
        policy = self.machine.queue
        makespan = 0.0

        def small_running() -> int:
            return sum(
                1
                for _, _, j in running
                if policy.small_job_nodes is not None and j.n_nodes < policy.small_job_nodes
            )

        while pending or running:
            progressed = True
            while progressed:
                progressed = False
                for job in list(pending):
                    if job.submit_time > clock:
                        continue
                    if any(not d.done or d.end_time > clock for d in job.after):
                        continue
                    if job.n_nodes > free:
                        break  # FIFO: don't let later jobs jump the queue
                    small_cap = policy.max_concurrent_small(job.n_nodes)
                    if small_cap is not None and small_running() >= small_cap:
                        continue  # policy-blocked; later (bigger) jobs may pass
                    job.start_time = clock
                    job.end_time = clock + job.duration
                    makespan = max(makespan, job.end_time)
                    free -= job.n_nodes
                    heapq.heappush(running, (job.end_time, next(self._counter), job))
                    pending.remove(job)
                    progressed = True
                    # sim-clock telemetry: queue waits are the co-scheduling
                    # quantity the paper's policy discussion turns on
                    rec.histogram("scheduler_queue_wait_seconds").observe(
                        job.queue_wait
                    )
                    rec.counter("scheduler_jobs_started_total").inc()
                    rec.event(
                        "scheduler.job_start",
                        job=job.name,
                        n_nodes=job.n_nodes,
                        sim_start=job.start_time,
                        sim_end=job.end_time,
                        queue_wait=job.queue_wait,
                    )
                    if job.payload is not None:
                        # execute the attached real work at grant time
                        with rec.span(
                            "scheduler.job_exec", job=job.name, n_nodes=job.n_nodes
                        ):
                            job.result = job.payload()
                        rec.counter("scheduler_payloads_executed_total").inc()
            if running:
                end, _, job = heapq.heappop(running)
                clock = max(clock, end)
                free += job.n_nodes
            elif pending:
                # nothing running: advance to the next relevant instant
                candidates = [j.submit_time for j in pending if j.submit_time > clock]
                dep_ends = [
                    d.end_time
                    for j in pending
                    for d in j.after
                    if d.end_time is not None and d.end_time > clock
                ]
                times = candidates + dep_ends
                if not times:
                    stuck = [j.name for j in pending]
                    rec.event("scheduler.deadlock", level="error", jobs=stuck)
                    raise RuntimeError(
                        f"scheduler deadlock: jobs {stuck} can never start "
                        "(unsatisfied dependencies or capacity)"
                    )
                clock = min(times)
        rec.event(
            "scheduler.done",
            machine=self.machine.name,
            jobs=len(self.jobs),
            makespan=makespan,
        )
        return makespan
