"""Storage devices: parallel file system and burst-buffer memory.

Models the two data paths the paper contrasts: writing Level 2 data to
the Lustre file system (the "simple" and "co-scheduled" combined
workflows) versus staging it in "a separate memory device (such as
NVRAM) that is shared between the main HPC system and the analysis
cluster" (the hypothetical *in-transit* variant, which eliminates the
Level 2 I/O entirely).

Devices track bytes written/read and convert them to wall seconds; the
accounting feeds Table 3/4's I/O columns.

Failure model (see ``docs/failures.md``): each transfer runs under a
:class:`~repro.faults.RetryPolicy` at the ``"storage.write"`` /
``"storage.read"`` injection sites.  A failed attempt means the
transfer is re-sent, so the returned wall-clock cost scales with the
number of attempts; the byte accounting counts the delivered payload
once (Table 3/4 report data moved, not wire traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults import FaultInjected, RetryPolicy, maybe_inject, resolve_retry
from ..obs import get_recorder

__all__ = ["StorageDevice", "lustre_like", "burst_buffer_like"]


@dataclass
class StorageDevice:
    """A storage tier with distinct read/write bandwidths.

    ``aggregate_cap`` bounds the total achievable bandwidth regardless
    of client count (file-system saturation); ``per_node`` rates apply
    below the cap.
    """

    name: str
    write_per_node: float  # bytes/s per writing node
    read_per_node: float
    aggregate_cap: float = float("inf")
    #: transfer retry policy at the storage.* fault sites (``None`` →
    #: the tree-wide default; faults are off unless a plan is active)
    retry: RetryPolicy | None = None
    #: cumulative accounting
    bytes_written: int = 0
    bytes_read: int = 0
    write_events: list[tuple[int, int]] = field(default_factory=list)  # (bytes, nodes)
    read_events: list[tuple[int, int]] = field(default_factory=list)

    def _bandwidth(self, per_node: float, n_nodes: int) -> float:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        return min(per_node * n_nodes, self.aggregate_cap)

    def _transfer_attempts(self, site: str, seq: int) -> int:
        """Run one injectable transfer; returns how many attempts it took."""
        outcome = resolve_retry(self.retry).run(
            maybe_inject,
            site,
            f"{self.name}:{seq}",
            site=site,
            key=f"{self.name}:{seq}",
            retryable=(FaultInjected,),
        )
        return outcome.attempts

    def write_seconds(self, nbytes: int, n_nodes: int) -> float:
        """Record a write and return its wall-clock cost.

        Under an active fault plan a failed attempt re-sends the
        transfer, so the cost is multiplied by the attempt count.
        """
        attempts = self._transfer_attempts("storage.write", len(self.write_events))
        self.bytes_written += int(nbytes)
        self.write_events.append((int(nbytes), n_nodes))
        seconds = attempts * nbytes / self._bandwidth(self.write_per_node, n_nodes)
        rec = get_recorder()
        rec.counter("storage_bytes_written_total").inc(int(nbytes))
        rec.event(
            "storage.write",
            device=self.name,
            nbytes=int(nbytes),
            nodes=n_nodes,
            seconds=seconds,
            attempts=attempts,
        )
        return seconds

    def read_seconds(self, nbytes: int, n_nodes: int) -> float:
        """Record a read and return its wall-clock cost.

        Under an active fault plan a failed attempt re-reads the
        transfer, so the cost is multiplied by the attempt count.
        """
        attempts = self._transfer_attempts("storage.read", len(self.read_events))
        self.bytes_read += int(nbytes)
        self.read_events.append((int(nbytes), n_nodes))
        seconds = attempts * nbytes / self._bandwidth(self.read_per_node, n_nodes)
        rec = get_recorder()
        rec.counter("storage_bytes_read_total").inc(int(nbytes))
        rec.event(
            "storage.read",
            device=self.name,
            nbytes=int(nbytes),
            nodes=n_nodes,
            seconds=seconds,
            attempts=attempts,
        )
        return seconds


def lustre_like() -> StorageDevice:
    """The Titan-era parallel file system (near peak for HACC I/O)."""
    return StorageDevice(
        name="lustre",
        write_per_node=2.42e8,
        read_per_node=2.42e8,
        aggregate_cap=35.0e9,
    )


def burst_buffer_like() -> StorageDevice:
    """NVRAM/burst-buffer tier: order-of-magnitude faster, no seek cost.

    The in-transit workflow stages Level 2 data here; its write cost is
    effectively hidden ("would not require any additional I/O for the
    Level 2 data").
    """
    return StorageDevice(
        name="burst-buffer",
        write_per_node=5.0e9,
        read_per_node=5.0e9,
        aggregate_cap=1.0e12,
    )
