#!/usr/bin/env python
"""Quickstart: run a mini-HACC simulation with in-situ analysis.

Runs a small cosmological N-body simulation to z=0 with the CosmoTools
in-situ framework attached (power spectrum + halo finding + MBP centers),
then prints the halo catalog and the measured P(k).

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.insitu import (
    HaloCenterAlgorithm,
    HaloFinderAlgorithm,
    InSituAnalysisManager,
    PowerSpectrumAlgorithm,
)
from repro.sim import HACCSimulation, SimulationConfig


def main() -> None:
    last_step = 24
    config = SimulationConfig(
        np_per_dim=24,  # 24^3 = 13,824 particles
        box=40.0,  # Mpc/h
        z_initial=30.0,
        z_final=0.0,
        n_steps=last_step,
        ng=48,  # force mesh
    )

    # CosmoTools: register the analysis pipeline, scheduled for the
    # final time step (halos -> centers must run in this order)
    manager = InSituAnalysisManager()
    manager.register(PowerSpectrumAlgorithm(at_steps=last_step))
    manager.register(HaloFinderAlgorithm(at_steps=last_step, min_count=40, n_ranks=4))
    manager.register(HaloCenterAlgorithm(at_steps=last_step, threshold=None))

    print(f"running {config.n_particles:,} particles to z=0 ...")
    sim = HACCSimulation(config, analysis_manager=manager)
    sim.run()
    print(f"done: z = {sim.z:.3f} after {sim.step} steps")

    ctx = manager.history[last_step]

    # halo catalog
    fof = ctx.store["fof"]
    centers = ctx.store["centers"]["catalog"]
    counts = sorted(fof["counts"].values(), reverse=True)
    print(f"\nFOF halos (b=0.2, >=40 particles): {len(fof['halos'])}")
    print(f"largest halos: {counts[:5]}")
    print("\nfirst five centers (MBP definition):")
    for rec in centers.records[:5]:
        print(
            f"  halo {int(rec['halo_tag']):7d}  n={int(rec['count']):5d}  "
            f"center=({rec['center_x']:.2f}, {rec['center_y']:.2f}, "
            f"{rec['center_z']:.2f})  phi={rec['potential']:.1f}"
        )

    # per-rank imbalance (the paper's core problem)
    rank_secs = np.asarray(ctx.timings["center_rank_seconds"])
    busy = rank_secs[rank_secs > 0]
    if len(busy) > 1:
        print(
            f"\ncenter-finding rank imbalance: slowest/fastest = "
            f"{busy.max() / busy.min():.1f}x"
        )

    # power spectrum
    ps = ctx.store["power_spectrum"]
    print("\nP(k) (h/Mpc vs (Mpc/h)^3):")
    for k, p in list(zip(ps.k, ps.power))[:8]:
        print(f"  k={k:6.3f}  P={p:10.1f}")


if __name__ == "__main__":
    main()
