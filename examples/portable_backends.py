#!/usr/bin/env python
"""PISTON-style portability: one algorithm, multiple backends.

The paper's analysis routines are written once against PISTON/Thrust and
compiled for GPUs, multi-core, and many-core machines.  This example
runs the *same* MBP center-finder implementation on this library's two
backends — ``serial`` (the CPU-reference stand-in) and ``vector`` (the
GPU/many-core stand-in) — plus the A*-search baseline, and reports the
speed ratios that calibrate the facility cost model (the paper's
"approximately a factor of fifty speed-up" on Titan's GPUs).

Usage::

    python examples/portable_backends.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import mbp_center_astar, mbp_center_bruteforce


def plummer_halo(n: int, seed: int = 7) -> np.ndarray:
    """Sample a Plummer-profile halo (a realistic dense structure)."""
    rng = np.random.default_rng(seed)
    u = rng.uniform(0.001, 0.999, n)
    r = 1.0 / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1)[:, None]
    return r[:, None] * v + 10.0


def main() -> None:
    halo = plummer_halo(1500)
    print(f"halo: {len(halo)} particles (Plummer profile)\n")

    results = {}
    for label, fn in [
        ("brute force / serial backend", lambda: mbp_center_bruteforce(halo, backend="serial")),
        ("brute force / vector backend", lambda: mbp_center_bruteforce(halo, backend="vector")),
        ("A* search (serial algorithm)", lambda: mbp_center_astar(halo)),
    ]:
        t0 = time.perf_counter()
        idx, phi, stats = fn()
        dt = time.perf_counter() - t0
        results[label] = (idx, phi, dt, stats)
        print(f"{label:32s}: center particle {idx:5d}  phi={phi:10.2f}  "
              f"{dt * 1e3:9.1f} ms  pair-ops {stats.pair_evaluations:,}")

    # all three must agree on the center
    centers = {r[0] for r in results.values()}
    assert len(centers) == 1, f"methods disagree: {centers}"
    print("\nall methods found the same most-bound particle.")

    t_serial = results["brute force / serial backend"][2]
    t_vector = results["brute force / vector backend"][2]
    t_astar = results["A* search (serial algorithm)"][2]
    print(f"\nvector-backend speedup over serial: {t_serial / t_vector:.0f}x "
          f"(the paper's GPU factor analogue: ~50x)")
    print(f"A* speedup over vector brute force: {t_vector / t_astar:.1f}x "
          f"(paper: 'a problem-dependent factor of roughly eight' vs serial)")
    a_stats = results["A* search (serial algorithm)"][3]
    print(f"A* exact potential evaluations: {a_stats.exact_potentials} of "
          f"{len(halo)} particles")


if __name__ == "__main__":
    main()
