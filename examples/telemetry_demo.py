#!/usr/bin/env python
"""Telemetry demo: one co-scheduled run, one correlated timeline.

Runs a small combined in-situ/co-scheduled workflow with the unified
telemetry layer enabled, then:

1. prints the per-run phase-breakdown table (cf. the paper's Table 4);
2. prints the hottest spans and the metrics exposition;
3. writes ``trace.json`` — open it at ``chrome://tracing`` (or
   https://ui.perfetto.dev) to see simulation steps, in-situ algorithms
   and listener-launched analysis jobs on separate thread tracks;
4. writes ``events.jsonl`` — the replayable structured event log.

Usage::

    python examples/telemetry_demo.py
"""

from __future__ import annotations

import tempfile

from repro import obs
from repro.core import run_combined_workflow
from repro.sim import SimulationConfig


def main() -> None:
    config = SimulationConfig(
        np_per_dim=20,  # 20^3 = 8,000 particles
        box=36.0,  # Mpc/h
        z_initial=30.0,
        z_final=0.0,
        n_steps=16,
    )

    spool = tempfile.mkdtemp(prefix="repro_spool_")
    print(f"running {config.n_particles:,} particles with telemetry on ...")

    with obs.telemetry(run_id="demo", jsonl_path="events.jsonl") as rec:
        result = run_combined_workflow(
            config,
            spool,
            threshold=100,  # off-load halos above 100 particles
            min_count=40,
            n_ranks=4,
            coschedule=True,  # listener watches the spool during the run
            listener_poll=0.02,
        )

    rt = result.telemetry
    print(
        f"done: {len(result.catalog)} halo centers "
        f"({len(result.offloaded_halo_tags)} analyzed off-line)\n"
    )

    # 1. the Table-4-style phase breakdown
    print(rt.phase_table())
    print()

    # 2. hot paths + operational metrics
    print(rt.span_table(top=8))
    print()
    print("metrics exposition (excerpt):")
    for line in rec.metrics.render_text().splitlines():
        if line.startswith(("io_", "listener_", "sim_steps")) and "bucket" not in line:
            print(f"  {line}")
    print()

    # 3. the Chrome trace for chrome://tracing
    path = rt.write_chrome_trace("trace.json")
    print(f"wrote {path} — load it in chrome://tracing or ui.perfetto.dev")

    # 4. the structured event log
    events, spans = obs.read_jsonl("events.jsonl")
    print(f"wrote events.jsonl — {len(events)} events, {len(spans)} spans replayable")
    errors = [e for e in events if e.level == "error"]
    print(f"errors during the run: {len(errors)}")


if __name__ == "__main__":
    main()
