#!/usr/bin/env python
"""Fault drill: kill the co-scheduled leg mid-run, watch it degrade.

Three acts (see docs/failures.md for the failure model):

1. **Clean run** — the combined workflow with no fault plan: the
   listener's off-line jobs all succeed and the merged Level 3 catalog
   is complete.
2. **Transient faults** — the first submit attempt of every snapshot
   fails (``fail_first=1`` at ``listener.submit``); the shared
   RetryPolicy absorbs it.  Same catalog, a few retries in the books.
3. **Permanent outage** — every off-line job fails every attempt
   (``always=True`` at ``offline.job``).  The run *completes anyway*:
   ``degraded=True``, one FailureRecord per missing snapshot, and the
   Level 3 catalog gracefully falls back to the in-situ-only leg.

Determinism: the whole drill is reproducible bit-for-bit from the two
seeds below (simulation seed + FaultPlan seed).

Usage::

    python examples/fault_drill.py     # runs in well under 60 s
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core import run_combined_workflow
from repro.faults import FaultPlan, FaultSpec, RetryPolicy, fault_plan
from repro.sim import SimulationConfig

CONFIG = SimulationConfig(
    np_per_dim=20, box=36.0, z_initial=24.0, z_final=0.0, n_steps=12, ng=40
)
THRESHOLD = 150  # paper: 300,000 at production scale


def run(spool: Path, plan: FaultPlan | None, retry: RetryPolicy | None = None):
    with fault_plan(plan):
        return run_combined_workflow(
            CONFIG,
            spool,
            threshold=THRESHOLD,
            min_count=30,
            n_ranks=4,
            coschedule=True,
            retry=retry,
        )


def main() -> None:
    t_start = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        # -- act 1: clean ----------------------------------------------------
        print("=== act 1: clean co-scheduled run ===")
        clean = run(Path(tmp) / "clean", plan=None)
        print(
            f"merged Level 3: {len(clean.catalog)} halos "
            f"({len(clean.insitu_catalog)} in-situ + "
            f"{len(clean.offline_catalog)} off-line), degraded={clean.degraded}"
        )

        # -- act 2: transient faults, absorbed by retries --------------------
        print("\n=== act 2: transient submit faults (fail_first=1) ===")
        transient_plan = FaultPlan(
            seed=7, sites={"listener.submit": FaultSpec(fail_first=1)}
        )
        with obs.telemetry(run_id="fault-drill-transient") as rec:
            transient = run(Path(tmp) / "transient", plan=transient_plan)
        stats = transient.listener_stats
        print(
            f"faults injected: {transient_plan.total_injected}, "
            f"submit retries: {stats.submit_retries}, "
            f"jobs failed: {stats.jobs_failed}, degraded={transient.degraded}"
        )
        assert not transient.degraded
        assert np.array_equal(
            transient.catalog["halo_tag"], clean.catalog["halo_tag"]
        ), "retries must not change the science"
        print("catalog identical to the clean run — retries absorbed the faults")
        failure_table = transient.telemetry.failure_table()
        if failure_table:
            print(failure_table)

        # -- act 3: permanent outage, graceful degradation -------------------
        print("\n=== act 3: the off-line leg dies permanently ===")
        outage_plan = FaultPlan(seed=7, sites={"offline.job": FaultSpec(always=True)})
        degraded = run(Path(tmp) / "outage", plan=outage_plan)
        print(
            f"degraded={degraded.degraded}, "
            f"missing snapshots: {[f.key for f in degraded.failures]}"
        )
        for f in degraded.failures:
            print(f"  FailureRecord: {f.as_dict()}")
        assert degraded.degraded
        assert len(degraded.offline_catalog) == 0
        assert np.array_equal(
            degraded.catalog["halo_tag"],
            degraded.insitu_catalog.sorted_by_tag()["halo_tag"],
        ), "degraded catalog must equal the in-situ-only leg"
        print(
            f"Level 3 (degraded): {len(degraded.catalog)} halos == "
            f"in-situ-only leg; off-loaded giants absent but accounted for"
        )
        print(
            f"\ncomplete vs degraded catalog: {len(clean.catalog)} vs "
            f"{len(degraded.catalog)} halos "
            f"({len(clean.catalog) - len(degraded.catalog)} giants missing)"
        )
    print(f"\nfault drill done in {time.perf_counter() - t_start:.1f} s")


if __name__ == "__main__":
    main()
