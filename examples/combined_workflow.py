#!/usr/bin/env python
"""The paper's combined in-situ/co-scheduled workflow, end to end, live.

Runs the full pipeline on the local machine:

1. mini-HACC evolves to z=0 with CosmoTools attached;
2. in-situ: all halos found, centers for halos <= threshold computed,
   the rest written as Level 2 data to a spool directory;
3. a background *listener* thread (the Bellerophon-derived co-scheduling
   daemon) watches the spool and launches the off-line center-finding
   job the moment the Level 2 file lands;
4. the in-situ and off-line catalogs are merged into the complete
   Level 3 product.

The script then verifies the headline workflow property: the combined
run's catalog is identical to what a full in-situ analysis produces.

Usage::

    python examples/combined_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import run_combined_workflow
from repro.sim import SimulationConfig


def main() -> None:
    config = SimulationConfig(
        np_per_dim=24, box=40.0, z_initial=30.0, z_final=0.0, n_steps=20, ng=48
    )
    threshold = 300  # paper: 300,000 at production scale

    with tempfile.TemporaryDirectory() as tmp:
        spool = Path(tmp) / "spool"

        print("=== combined in-situ / co-scheduled workflow (live) ===")
        result = run_combined_workflow(
            config,
            spool,
            threshold=threshold,
            min_count=40,
            n_ranks=4,
            coschedule=True,  # listener thread overlaps the simulation
        )

        print(f"in-situ centers:   {len(result.insitu_catalog):4d} halos "
              f"(<= {threshold} particles)")
        print(f"off-loaded:        {len(result.offline_catalog):4d} halos "
              f"(> {threshold} particles, analyzed by the listener's job)")
        print(f"merged Level 3:    {len(result.catalog):4d} halo centers")
        print(f"Level 2 files:     {result.level2_paths}")
        stats = result.listener_stats
        print(f"listener: {stats.polls} polls, {stats.jobs_submitted} jobs "
              f"submitted, max backlog {stats.max_backlog}")

        # verify against a full in-situ run (threshold = infinity)
        print("\nverifying against a full in-situ analysis ...")
        check = run_combined_workflow(
            config, Path(tmp) / "spool2", threshold=10**9, min_count=40, n_ranks=4
        )
        same_tags = np.array_equal(
            result.catalog.records["halo_tag"], check.catalog.records["halo_tag"]
        )
        same_mbp = np.array_equal(
            result.catalog.records["mbp_tag"], check.catalog.records["mbp_tag"]
        )
        print(f"identical halo sets: {same_tags}; identical centers: {same_mbp}")
        if not (same_tags and same_mbp):
            raise SystemExit("workflow mismatch!")
        print("OK: splitting the analysis changed nothing but the schedule.")


if __name__ == "__main__":
    main()
