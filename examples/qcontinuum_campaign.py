#!/usr/bin/env python
"""Paper-scale campaign planning: the Q Continuum analysis, projected.

Uses the calibrated cost model and the synthesized Q Continuum halo
population (167.7M halos, giants up to 25M particles) to reproduce the
paper's §4.1 analysis-strategy comparison and the §4.2 workflow table —
the decision a simulation team would actually make with this library.

Usage::

    python examples/qcontinuum_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    evaluate_all,
    plan_split,
    qcontinuum_like_profile,
    table3,
    table4,
    test_run_like_profile,
)
from repro.core.report import format_bytes
from repro.machines import MOONLIGHT, PAPER_CALIBRATION, TITAN


def main() -> None:
    cost = PAPER_CALIBRATION

    print("=== the 1024^3 test problem (paper §4.2) ===\n")
    test = test_run_like_profile()
    print(
        f"workload: {test.n_halos:,} halos, largest {test.largest_halo:,} "
        f"particles, Level 1 {format_bytes(test.level1_bytes)}"
    )
    reports = evaluate_all(test, cost, TITAN)
    print()
    print(table3(reports))
    print()
    for r in reports[:3]:
        print(table4(r))
        print()

    print("=== the Q Continuum production run (paper §4.1) ===\n")
    q = qcontinuum_like_profile()
    print(
        f"workload: {q.n_halos:,} halos, largest {q.largest_halo:,} "
        f"particles, Level 1 {format_bytes(q.level1_bytes)} per snapshot"
    )

    # automated in-situ/off-line split (the paper's planning rule)
    plan = plan_split(q, cost, TITAN, analysis_machine=MOONLIGHT)
    print("\nautomated split plan:")
    print(f"  t_io (off-line I/O tax)      : {plan.t_io:,.0f} s")
    print(f"  m_max_io (in-situ capable)   : {plan.m_max_io:,} particles")
    print(f"  m_max_sim (largest found)    : {plan.m_max_sim:,} particles")
    if plan.all_in_situ:
        print("  -> everything in-situ")
    else:
        print(f"  -> off-load halos above {plan.threshold:,} particles")
        print(f"  off-load total work T        : {plan.offload_total_seconds:,.0f} s")
        print(f"  largest single halo t_max    : {plan.offload_max_seconds:,.0f} s")
        print(f"  co-scheduling ranks (T/t_max): {plan.n_offline_ranks}")

    # the Moonlight off-load accounting of §4.1
    mask = q.halo_counts > 300_000
    pairs = q.weighted_pairs(mask)
    ml_node_hours = pairs / cost.pair_rate(MOONLIGHT, "gpu") / 3600
    print(
        f"\noff-loaded centers on Moonlight: {ml_node_hours:,.0f} node-hours "
        f"(paper: ~1770); Titan-equivalent {0.55 * ml_node_hours:,.0f} "
        f"(paper: ~985)"
    )

    # slowest-node projection if everything had stayed in-situ
    node_pairs = q.node_pairs(mask)
    slowest = float(np.max(cost.center_seconds(node_pairs, TITAN, backend="gpu")))
    print(
        f"projected slowest node if fully in-situ: {slowest / 3600:.1f} h "
        f"(paper: 5.9 h) -> the imbalance the combined workflow removes"
    )


if __name__ == "__main__":
    main()
