#!/usr/bin/env python
"""Campaign-service demo: submit, hard-kill a worker, resume, compare.

The end-to-end drill from ``docs/service.md``, run twice side by side:

1. two campaigns (seeded center-finding jobs + a noop batch) are
   submitted into two fresh stores — ``survivor`` and ``control``;
2. the ``survivor`` store's worker is started in a **subprocess** armed
   with ``--crash-after N`` and hard-killed (``os._exit(2)``)
   mid-lifecycle, stranding jobs between journaled transitions;
3. ``resume`` rolls the stranded jobs back and a fresh worker finishes
   the campaign;
4. the ``control`` store runs uninterrupted;
5. the two stores' fingerprints (spec + state + results, timing
   projected away) must be **bit-identical** — the property the durable
   journal + enforced state machine exist to provide.

CI runs this on every push (the ``service`` job) and archives the
survivor store; replay it anywhere with
``python -m repro.service status <dir>``.

Usage::

    python examples/campaign_service.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

from repro.service import CampaignStore, JobSpec, ServiceWorker
from repro.service.cli import main as service_cli

#: transitions before the drill kill: 2 finished jobs (6 edges each) +
#: 3 edges into the third job — it dies stranded in RUNNING
CRASH_AFTER = 15


def submit_demo_campaigns(root: str) -> None:
    with CampaignStore.create(root, seed=7) as store:
        store.submit_campaign(
            "centers",
            [
                JobSpec(
                    name=f"centers-{i:02d}",
                    kind="synthetic_centers",
                    params={"seed": 7000 + i},
                    wall_estimate=40.0 + 10.0 * (i % 3),
                )
                for i in range(5)
            ],
            seed=7,
        )
        store.submit_campaign(
            "noops",
            [JobSpec(name=f"noop-{i}", kind="noop", params={"i": i}) for i in range(3)],
            seed=7,
        )


def run_worker_subprocess(root: str, crash_after: int | None) -> int:
    """A real worker process — the thing we get to kill."""
    argv = [sys.executable, "-m", "repro.service", "work", root]
    if crash_after is not None:
        argv += ["--crash-after", str(crash_after)]
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = (
        os.path.join(src, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return subprocess.run(argv, env=env, timeout=300).returncode


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="repro_service_")
    survivor = os.path.join(workdir, "survivor")
    control = os.path.join(workdir, "control")

    print("== submit: two campaigns into two identical stores ==")
    submit_demo_campaigns(survivor)
    submit_demo_campaigns(control)
    service_cli(["status", survivor])

    print(f"\n== drill: worker hard-killed after {CRASH_AFTER} transitions ==")
    code = run_worker_subprocess(survivor, CRASH_AFTER)
    print(f"worker exit code: {code} (expected {ServiceWorker.CRASH_EXIT_CODE})")
    assert code == ServiceWorker.CRASH_EXIT_CODE, "drill kill did not fire"
    service_cli(["status", survivor])

    print("\n== resume: roll back stranded jobs, finish the campaign ==")
    assert service_cli(["resume", survivor]) == 0

    print("\n== control: the same campaigns, uninterrupted ==")
    assert run_worker_subprocess(control, None) == 0

    print("\n== verdict ==")
    with CampaignStore.open(survivor) as a, CampaignStore.open(control) as b:
        assert a.done and b.done, "campaigns did not complete"
        fa, fb = a.fingerprint(), b.fingerprint()
        print(f"survivor fingerprint: {fa}")
        print(f"control  fingerprint: {fb}")
        assert fa == fb, "kill/resume changed the campaign outcome!"
        n = len(a.jobs)
    print(f"bit-identical: {n} jobs survived a hard worker kill unchanged")
    print(f"store kept at {survivor}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
