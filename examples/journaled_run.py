#!/usr/bin/env python
"""Durable journal demo: a fault-injected run replayed from its journal.

Runs the combined workflow with ``journal_dir=`` and a deterministic
fault plan (one transient Level 2 write failure, one transient off-line
job failure — both recovered by retries), then replays the run through
the campaign console the way you would for a real campaign, long after
the producing process exited:

1. the Table-4 phase report + failure summary (``report``);
2. the workflow lanes / overlap view (``timeline``);
3. the last journal records (``tail --last``);
4. one causally-linked Chrome trace — driver, listener, and
   exec-worker subprocess spans in a single tree (``trace``).

Usage::

    python examples/journaled_run.py
"""

from __future__ import annotations

import os
import tempfile

from repro.core import run_combined_workflow
from repro.faults import FaultPlan, FaultSpec, fault_plan
from repro.obs.cli import main as obs_console
from repro.sim import SimulationConfig


def main() -> None:
    config = SimulationConfig(
        np_per_dim=20,  # 20^3 = 8,000 particles
        box=36.0,  # Mpc/h
        z_initial=30.0,
        z_final=0.0,
        n_steps=16,
    )
    workdir = tempfile.mkdtemp(prefix="repro_journaled_")
    journal_root = os.path.join(workdir, "journal")
    plan = FaultPlan(
        seed=7,
        sites={
            "io.write": FaultSpec(fail_first=1),
            "offline.job": FaultSpec(fail_first=1),
        },
    )

    print(f"running {config.n_particles:,} particles, journaling to {journal_root} ...")
    with fault_plan(plan):
        result = run_combined_workflow(
            config,
            spool_dir=os.path.join(workdir, "spool"),
            threshold=60,  # offload halos > 60 particles to the exec engine
            min_count=40,
            n_ranks=4,
            analysis_workers=2,
            journal_dir=journal_root,
            run_id="demo",
        )
    print(
        f"done: {len(result.catalog)} halos, degraded={result.degraded}; "
        "now replaying from the journal alone\n"
    )

    run_dir = os.path.join(journal_root, "demo")
    obs_console(["report", run_dir])
    print()
    obs_console(["timeline", run_dir])
    print()
    obs_console(["tail", run_dir, "--last", "5"])
    print()
    obs_console(["trace", run_dir, "-o", "trace.json"])
    print("\nopen trace.json at chrome://tracing or https://ui.perfetto.dev —")
    print("exec-worker spans sit causally under the driver's exec.run span.")
    print(f"journal kept at {run_dir}")


if __name__ == "__main__":
    main()
